package wss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

// naiveAvgWSS recomputes s(T, ps) for a static page size by brute force:
// after each reference, scan the last T references and sum distinct pages.
func naiveAvgWSS(refs []addr.VA, T uint64, shift uint) float64 {
	var acc uint64
	for t := range refs {
		start := 0
		if uint64(t+1) > T {
			start = t + 1 - int(T)
		}
		pages := map[addr.PN]bool{}
		for _, va := range refs[start : t+1] {
			pages[addr.Page(va, shift)] = true
		}
		acc += uint64(len(pages)) * (1 << shift)
	}
	return float64(acc) / float64(len(refs))
}

func TestStaticMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	refs := make([]addr.VA, 2000)
	for i := range refs {
		// Mix of hot locality and scattered tail.
		if rng.Intn(3) == 0 {
			refs[i] = addr.VA(rng.Intn(1 << 18))
		} else {
			refs[i] = addr.VA(rng.Intn(1 << 14))
		}
	}
	for _, T := range []uint64{1, 10, 100, 500, 5000} {
		shifts := []uint{addr.Shift4K, addr.Shift8K, addr.Shift32K}
		s := NewStatic(T, shifts...)
		for _, va := range refs {
			s.Step(va)
		}
		got := s.Finish()
		if s.Steps() != uint64(len(refs)) {
			t.Fatalf("Steps = %d", s.Steps())
		}
		for i, shift := range shifts {
			want := naiveAvgWSS(refs, T, shift)
			if math.Abs(got[i].AvgBytes-want) > 1e-6 {
				t.Fatalf("T=%d shift=%d: got %v want %v", T, shift, got[i].AvgBytes, want)
			}
		}
	}
}

func TestStaticSchemeNames(t *testing.T) {
	s := NewStatic(10, addr.Shift4K, addr.Shift32K)
	s.Step(0)
	res := s.Finish()
	if res[0].Scheme != "4KB" || res[1].Scheme != "32KB" {
		t.Fatalf("schemes: %v %v", res[0].Scheme, res[1].Scheme)
	}
}

func TestStaticSinglePageConstantStream(t *testing.T) {
	// One page referenced k times: in the working set at every step, so
	// average WSS = page size exactly.
	s := NewStatic(100, addr.Shift4K)
	for i := 0; i < 1000; i++ {
		s.Step(addr.VA(0x123))
	}
	got := s.Finish()[0].AvgBytes
	if got != float64(addr.BlockSize) {
		t.Fatalf("avg = %v, want %v", got, addr.BlockSize)
	}
}

func TestStaticEmptyStream(t *testing.T) {
	s := NewStatic(10, addr.Shift4K)
	if got := s.Finish()[0].AvgBytes; got != 0 {
		t.Fatalf("empty stream avg = %v", got)
	}
}

func TestStaticPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero T", func() { NewStatic(0, addr.Shift4K) })
	mustPanic("no shifts", func() { NewStatic(10) })
	mustPanic("step after finish", func() {
		s := NewStatic(10, addr.Shift4K)
		s.Finish()
		s.Step(0)
	})
	mustPanic("double finish", func() {
		s := NewStatic(10, addr.Shift4K)
		s.Finish()
		s.Finish()
	})
}

func TestNormalized(t *testing.T) {
	base := Result{Scheme: "4KB", AvgBytes: 100}
	r := Result{Scheme: "32KB", AvgBytes: 167}
	if got := r.Normalized(base); got != 1.67 {
		t.Fatalf("normalized = %v", got)
	}
	if got := r.Normalized(Result{}); got != 0 {
		t.Fatalf("normalized vs zero base = %v", got)
	}
}

// naiveTwoSizeWSS recomputes the two-page-scheme WSS after each reference
// by brute force, replaying the policy's chunk mapping.
func naiveTwoSizeWSS(refs []addr.VA, cfg policy.TwoSizeConfig) float64 {
	pol := policy.NewTwoSize(cfg)
	var acc uint64
	for t, va := range refs {
		pol.Assign(va)
		// Window contents by brute force.
		start := 0
		if t+1 > cfg.T {
			start = t + 1 - cfg.T
		}
		blocks := map[addr.PN]bool{}
		for _, v := range refs[start : t+1] {
			blocks[addr.Block(v)] = true
		}
		chunkBlocks := map[addr.PN]int{}
		for b := range blocks {
			chunkBlocks[addr.ChunkOfBlock(b)]++
		}
		var w uint64
		for c, n := range chunkBlocks {
			if pol.IsLarge(c) {
				w += addr.ChunkSize
			} else {
				w += uint64(n) * addr.BlockSize
			}
		}
		acc += w
	}
	return float64(acc) / float64(len(refs))
}

func TestTwoSizeMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, T := range []int{5, 50, 300} {
			rng := rand.New(rand.NewSource(seed))
			refs := make([]addr.VA, 1500)
			for i := range refs {
				switch rng.Intn(3) {
				case 0: // dense chunk traffic → promotions
					refs[i] = addr.VA(rng.Intn(4 * addr.ChunkSize))
				case 1: // sparse singles
					refs[i] = addr.VA(uint64(10+rng.Intn(50))<<addr.ChunkShift) +
						addr.VA(rng.Intn(addr.BlockSize))
				default: // medium density
					refs[i] = addr.VA(100<<addr.ChunkShift) +
						addr.VA(rng.Intn(3*addr.BlockSize))
				}
			}
			cfg := policy.DefaultTwoSizeConfig(T)
			pol := policy.NewTwoSize(cfg)
			ts := NewTwoSize(pol)
			for _, va := range refs {
				ts.Observe(pol.Assign(va))
			}
			got := ts.Result().AvgBytes
			want := naiveTwoSizeWSS(refs, cfg)
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("seed=%d T=%d: got %v want %v", seed, T, got, want)
			}
			if ts.Steps() != uint64(len(refs)) {
				t.Fatalf("Steps = %d", ts.Steps())
			}
		}
	}
}

func TestTwoSizeCurrent(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(100))
	ts := NewTwoSize(pol)
	// One block in a small chunk.
	ts.Observe(pol.Assign(addr.VA(0)))
	if got := ts.Current(); got != addr.BlockSize {
		t.Fatalf("current = %d, want one block", got)
	}
	// Promote the chunk by touching 4 blocks.
	for i := 1; i < 4; i++ {
		ts.Observe(pol.Assign(addr.VA(i * addr.BlockSize)))
	}
	if got := ts.Current(); got != addr.ChunkSize {
		t.Fatalf("current after promotion = %d, want one chunk", got)
	}
}

func TestTwoSizeResultName(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(10))
	ts := NewTwoSize(pol)
	if ts.Result().Scheme != "4KB/32KB" {
		t.Fatalf("scheme = %q", ts.Result().Scheme)
	}
	if ts.Result().AvgBytes != 0 {
		t.Fatal("empty average should be 0")
	}
}

func TestTwoSizeRejectsSecondCalculator(t *testing.T) {
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(10))
	NewTwoSize(pol)
	defer func() {
		if recover() == nil {
			t.Fatal("second calculator should panic")
		}
	}()
	NewTwoSize(pol)
}

// Paper Section 3.4: the two-page working set is at most 2x the 4KB
// working set (promotion needs >= half the chunk active), and at least
// as large (large pages can only add internal fragmentation).
func TestTwoSizeBoundedByDoubling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	T := 200
	refs := make([]addr.VA, 4000)
	for i := range refs {
		refs[i] = addr.VA(rng.Intn(1 << 19))
	}
	pol := policy.NewTwoSize(policy.DefaultTwoSizeConfig(T))
	ts := NewTwoSize(pol)
	for step, va := range refs {
		ts.Observe(pol.Assign(va))
		w4 := uint64(pol.Window().ActiveBlocks()) * addr.BlockSize
		cur := ts.Current()
		if cur < w4 || cur > 2*w4 {
			t.Fatalf("step %d: two-size WSS %d outside [%d, %d]", step, cur, w4, 2*w4)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:             "512B",
		2048:            "2.0KB",
		1 << 20:         "1.00MB",
		2.5 * (1 << 20): "2.50MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{Scheme: "b", AvgBytes: 3}, {Scheme: "a", AvgBytes: 1}, {Scheme: "c", AvgBytes: 2}}
	SortResults(rs)
	if rs[0].Scheme != "a" || rs[1].Scheme != "c" || rs[2].Scheme != "b" {
		t.Fatalf("sorted: %+v", rs)
	}
}

// Regression: sort.Slice is unstable, so results tying on AvgBytes used
// to land in nondeterministic order. The sort must break ties by Scheme
// and produce the same permutation from any input order.
func TestSortResultsEqualAverages(t *testing.T) {
	base := []Result{
		{Scheme: "4KB/32KB", AvgBytes: 2, Pages: 1},
		{Scheme: "4KB", AvgBytes: 2, Pages: 2},
		{Scheme: "32KB", AvgBytes: 2, Pages: 3},
		{Scheme: "8KB", AvgBytes: 1, Pages: 4},
	}
	want := []string{"8KB", "32KB", "4KB", "4KB/32KB"}
	// Every rotation of the input must sort to the identical order.
	for rot := 0; rot < len(base); rot++ {
		rs := append(append([]Result(nil), base[rot:]...), base[:rot]...)
		SortResults(rs)
		for i, w := range want {
			if rs[i].Scheme != w {
				t.Fatalf("rotation %d: order %v, want %v", rot, rs, want)
			}
		}
	}
}

// Property: for any stream, larger page sizes never shrink the average
// working-set size in bytes (each small page is contained in a large
// one), and WSS is bounded above by footprint x size ratio.
func TestMonotoneInPageSizeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewStatic(64, addr.Shift4K, addr.Shift8K, addr.Shift16K, addr.Shift32K)
		for _, r := range raw {
			s.Step(addr.VA(r) << 7) // spread over a 8MB region
		}
		res := s.Finish()
		for i := 1; i < len(res); i++ {
			if res[i].AvgBytes+1e-9 < res[i-1].AvgBytes {
				return false
			}
			// Doubling the page size at most doubles the byte size.
			if res[i].AvgBytes > 2*res[i-1].AvgBytes+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
