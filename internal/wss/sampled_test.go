package wss

import (
	"testing"

	"twopage/internal/addr"
	"twopage/internal/policy"
)

func ladderFor(t *testing.T, shifts ...uint) *policy.Ladder {
	t.Helper()
	classes := addr.MustShiftClasses(shifts...)
	cfg := policy.DefaultLadderConfig(1000, classes)
	return policy.NewLadder(cfg)
}

// TestSampledTwoClass checks the instantaneous size against hand
// accounting on a two-class hierarchy: before promotion, one 4KB block
// per touched block; after, one 32KB chunk.
func TestSampledTwoClass(t *testing.T) {
	pol := ladderFor(t, addr.BlockShift, addr.ChunkShift)
	s := NewSampled(pol, 4)
	// Touch three distinct blocks of chunk 0: below the half-or-more
	// threshold (4 of 8), so all stay small.
	for i := 0; i < 3; i++ {
		pol.Assign(addr.VA(i * addr.BlockSize))
		s.Step()
	}
	if got := s.Current(); got != 3*addr.BlockSize {
		t.Fatalf("pre-promotion size = %d, want %d", got, 3*addr.BlockSize)
	}
	// Fourth block promotes the chunk; the working set becomes one 32KB
	// page.
	pol.Assign(addr.VA(3 * addr.BlockSize))
	s.Step()
	if got := s.Current(); got != addr.ChunkSize {
		t.Fatalf("post-promotion size = %d, want %d", got, addr.ChunkSize)
	}
	if s.Samples() != 1 {
		t.Fatalf("samples = %d, want 1 (period 4, 4 steps)", s.Samples())
	}
	// The single sample saw the post-promotion state.
	if got := s.Result().AvgBytes; got != float64(addr.ChunkSize) {
		t.Fatalf("avg = %v, want %v", got, float64(addr.ChunkSize))
	}
}

// TestSampledCountsUpperRegionOnce drives a three-class hierarchy until
// a class-2 region is mapped and checks its size is counted once even
// though several of its chunks are active.
func TestSampledCountsUpperRegionOnce(t *testing.T) {
	pol := ladderFor(t, addr.BlockShift, addr.ChunkShift, addr.Shift256K)
	s := NewSampled(pol, 0)
	// 256KB = 8 chunks of 8 blocks. Touch every block of every chunk:
	// each chunk promotes to class 1, and once half the chunks are
	// mapped, the class-2 region promotes.
	for c := 0; c < 8; c++ {
		for b := 0; b < 8; b++ {
			pol.Assign(addr.VA(c*addr.ChunkSize + b*addr.BlockSize))
			s.Step()
		}
	}
	if !pol.MappedAt(2, 0) {
		t.Fatal("class-2 region 0 should be mapped")
	}
	if got := s.Current(); got != uint64(addr.Size256K) {
		t.Fatalf("size = %d, want one 256KB region = %d", got, uint64(addr.Size256K))
	}
	if s.Steps() != 64 {
		t.Fatalf("steps = %d, want 64", s.Steps())
	}
}

// TestSampledMixedClasses pins the dedupe walk with simultaneously
// active small blocks, a class-1 chunk, and a class-2 region.
func TestSampledMixedClasses(t *testing.T) {
	pol := ladderFor(t, addr.BlockShift, addr.ChunkShift, addr.Shift256K)
	s := NewSampled(pol, 0)
	step := func(va addr.VA) { pol.Assign(va); s.Step() }
	// Region 1 (0x40000..0x80000): fill completely -> class 2.
	for c := 8; c < 16; c++ {
		for b := 0; b < 8; b++ {
			step(addr.VA(c*addr.ChunkSize + b*addr.BlockSize))
		}
	}
	// Chunk 0 of region 0: fill -> class 1 (region 0 has only 1 of 8
	// chunks mapped, stays unpromoted).
	for b := 0; b < 8; b++ {
		step(addr.VA(b * addr.BlockSize))
	}
	// Two lone blocks in chunk 2 (region 0): stay class 0.
	step(addr.VA(2 * addr.ChunkSize))
	step(addr.VA(2*addr.ChunkSize + addr.BlockSize))

	want := uint64(addr.Size256K) + uint64(addr.ChunkSize) + 2*addr.BlockSize
	if got := s.Current(); got != want {
		t.Fatalf("size = %d, want %d (256KB + 32KB + 2 blocks)", got, want)
	}
}

// TestSampledDefaultPeriod checks the zero-value period and that the
// average accumulates over samples.
func TestSampledDefaultPeriod(t *testing.T) {
	pol := ladderFor(t, addr.BlockShift, addr.ChunkShift)
	s := NewSampled(pol, 0)
	for i := 0; i < 2*DefaultSampleEvery; i++ {
		pol.Assign(0) // one block forever
		s.Step()
	}
	if s.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", s.Samples())
	}
	if got := s.Result().AvgBytes; got != float64(addr.BlockSize) {
		t.Fatalf("avg = %v, want one block", got)
	}
}
