package wss

import (
	"twopage/internal/addr"
	"twopage/internal/htab"
)

// StaticShard is the shard-local half of a sharded static working-set
// pass. The Slutz–Traiger residency accumulation decomposes exactly
// across a partition of the stream: a page accessed at global times
// u_1 < ... < u_m contributes Σ min(u_{i+1}−u_i, T) + min(k−u_m, T),
// and every consecutive pair either falls inside one shard (accumulated
// locally in acc) or straddles a shard boundary (reconstructed at merge
// time from the per-shard first/last access tables). Timestamps are
// global — the shard is told where its section starts — so MergeStatic
// reproduces the serial Static result bit for bit, for any shard count.
type StaticShard struct {
	t      uint64
	shifts []uint
	first  []*htab.U64 // per shift: page -> first access time in this shard
	last   []*htab.U64 // per shift: page -> last access time in this shard
	acc    []uint64    // per shift: intra-shard residency steps
	start  uint64      // global time of the shard's first reference
	steps  uint64
}

// NewStaticShard returns a shard-local calculator for window T whose
// first reference carries global timestamp start. T must be positive;
// shifts must be non-empty.
func NewStaticShard(T, start uint64, shifts ...uint) *StaticShard {
	if T == 0 {
		panic("wss: T must be positive")
	}
	if len(shifts) == 0 {
		panic("wss: need at least one page shift")
	}
	s := &StaticShard{
		t:      T,
		shifts: append([]uint(nil), shifts...),
		first:  make([]*htab.U64, len(shifts)),
		last:   make([]*htab.U64, len(shifts)),
		acc:    make([]uint64, len(shifts)),
		start:  start,
	}
	for i := range s.last {
		s.first[i] = htab.NewU64(1 << 10)
		s.last[i] = htab.NewU64(1 << 10)
	}
	return s
}

// Step observes one reference; time advances by one per call. The
// per-reference shard hot path: one extra first-access probe per shift
// compared with Static.Step, zero steady-state allocations.
//
//paperlint:hot
func (s *StaticShard) Step(va addr.VA) {
	t := s.start + s.steps
	s.steps++
	for i, shift := range s.shifts {
		pn := uint64(addr.Page(va, shift))
		if lastT, ok := s.last[i].Get(pn); ok {
			gap := t - lastT
			if gap > s.t {
				gap = s.t
			}
			s.acc[i] += gap
		} else {
			s.first[i].Put(pn, t)
		}
		s.last[i].Put(pn, t)
	}
}

// Steps returns how many references this shard has observed.
func (s *StaticShard) Steps() uint64 { return s.steps }

// MergeStatic folds shard-local static working-set state into the
// per-shift results the serial Static.Finish would have produced over
// the concatenated stream. Shards must be given in section order and
// agree on (T, shifts); empty shards are fine. The merge is exact:
// intra-shard gaps were accumulated locally, boundary gaps are spliced
// here from the first/last tables, and the closing tails use the global
// stream length — all integer arithmetic, so the result is
// byte-identical to the serial pass for any shard count.
func MergeStatic(shards []*StaticShard) []Result {
	if len(shards) == 0 {
		panic("wss: MergeStatic needs at least one shard")
	}
	ref := shards[0]
	totalSteps := uint64(0)
	for _, sh := range shards {
		totalSteps += sh.steps
	}
	out := make([]Result, len(ref.shifts))
	for i, shift := range ref.shifts {
		acc := uint64(0)
		// carry maps page -> last access time in any shard processed so
		// far; walking shards in section order makes each boundary gap a
		// consecutive-access pair of the serial stream.
		carry := htab.NewU64(1 << 10)
		for _, sh := range shards {
			acc += sh.acc[i]
			sh.first[i].Iter(func(pn, firstT uint64) {
				if lastT, ok := carry.Get(pn); ok {
					gap := firstT - lastT
					if gap > ref.t {
						gap = ref.t
					}
					acc += gap
				}
			})
			sh.last[i].Iter(func(pn, lastT uint64) {
				carry.Put(pn, lastT)
			})
		}
		carry.Iter(func(_, lastT uint64) {
			gap := totalSteps - lastT
			if gap > ref.t {
				gap = ref.t
			}
			acc += gap
		})
		size := uint64(1) << shift
		var avg float64
		if totalSteps > 0 {
			avg = float64(acc) * float64(size) / float64(totalSteps)
		}
		out[i] = Result{
			Scheme:   addr.PageSize(size).String(),
			AvgBytes: avg,
			Pages:    uint64(carry.Len()),
			Samples:  totalSteps,
		}
	}
	return out
}
