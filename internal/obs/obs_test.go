package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestCountersAddSumsAndMaxes(t *testing.T) {
	a := Counters{
		Passes: 1, Refs: 10, Instrs: 20,
		TLBAccesses: 30, TLBHitsSmall: 12, TLBHitsLarge: 8,
		TLBMissesSmall: 6, TLBMissesLarge: 4, TLBInvalidations: 2,
		Promotions: 3, Demotions: 1,
		PTWalks: 5, Faults: 7, Evictions: 9, CopiedBytes: 11,
		BuddySplits: 13, BuddyCoalesces: 15, BuddyPeakResident: 100,
		WSSPages: 17, DecodedRefs: 19, DecodedBlocks: 21, DecodedBytes: 23,
	}
	b := Counters{
		Passes: 2, Refs: 100, Instrs: 200,
		TLBAccesses: 300, TLBHitsSmall: 120, TLBHitsLarge: 80,
		TLBMissesSmall: 60, TLBMissesLarge: 40, TLBInvalidations: 20,
		Promotions: 30, Demotions: 10,
		PTWalks: 50, Faults: 70, Evictions: 90, CopiedBytes: 110,
		BuddySplits: 130, BuddyCoalesces: 150, BuddyPeakResident: 60,
		WSSPages: 170, DecodedRefs: 190, DecodedBlocks: 210, DecodedBytes: 230,
	}
	got := a
	got.Add(b)
	want := Counters{
		Passes: 3, Refs: 110, Instrs: 220,
		TLBAccesses: 330, TLBHitsSmall: 132, TLBHitsLarge: 88,
		TLBMissesSmall: 66, TLBMissesLarge: 44, TLBInvalidations: 22,
		Promotions: 33, Demotions: 11,
		PTWalks: 55, Faults: 77, Evictions: 99, CopiedBytes: 121,
		BuddySplits: 143, BuddyCoalesces: 165,
		// High-water mark: max(100, 60), not 160.
		BuddyPeakResident: 100,
		WSSPages:          187, DecodedRefs: 209, DecodedBlocks: 231, DecodedBytes: 253,
	}
	if got != want {
		t.Errorf("Add merge mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Max-merge also holds in the other direction (incoming peak wins).
	got = b
	got.Add(a)
	if got.BuddyPeakResident != 100 {
		t.Errorf("BuddyPeakResident = %d, want max 100", got.BuddyPeakResident)
	}
}

// Every Counters field must participate in Add: a field added to the
// struct but forgotten in Add would silently drop counts. Adding a
// block of all-ones to itself must change every field.
func TestCountersAddCoversAllFields(t *testing.T) {
	var ones Counters
	v := reflect.ValueOf(&ones).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(1)
	}
	got := ones
	got.Add(ones)
	gv := reflect.ValueOf(got)
	for i := 0; i < gv.NumField(); i++ {
		name := gv.Type().Field(i).Name
		val := gv.Field(i).Uint()
		if name == "BuddyPeakResident" {
			if val != 1 { // max(1,1)
				t.Errorf("%s = %d after max-merge, want 1", name, val)
			}
			continue
		}
		if val != 2 {
			t.Errorf("%s = %d after Add, want 2 (field missing from Add?)", name, val)
		}
	}
}

func TestCountersAddDoesNotAllocate(t *testing.T) {
	a := Counters{Refs: 1, BuddyPeakResident: 5}
	b := Counters{Refs: 2, BuddyPeakResident: 3}
	allocs := testing.AllocsPerRun(100, func() {
		a.Add(b)
	})
	if allocs != 0 {
		t.Errorf("Counters.Add allocates %.1f objects per call, want 0", allocs)
	}
}

func TestCollectorSortedPassesAndTotals(t *testing.T) {
	c := NewCollector()
	c.Record("zeta", Counters{Refs: 3, BuddyPeakResident: 10})
	c.Record("alpha", Counters{Refs: 1, BuddyPeakResident: 40})
	c.Record("mid", Counters{Refs: 2, BuddyPeakResident: 20})

	passes := c.Passes()
	gotKeys := make([]string, len(passes))
	for i, p := range passes {
		gotKeys[i] = p.Key
	}
	wantKeys := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Errorf("Passes keys = %v, want sorted %v", gotKeys, wantKeys)
	}

	tot := c.Totals()
	if tot.Refs != 6 {
		t.Errorf("Totals.Refs = %d, want 6", tot.Refs)
	}
	if tot.BuddyPeakResident != 40 {
		t.Errorf("Totals.BuddyPeakResident = %d, want max 40", tot.BuddyPeakResident)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

// Re-recording a key overwrites: the same key denotes the same
// deterministic work, so a retried unit must not double-count.
func TestCollectorRecordLastWriteWins(t *testing.T) {
	c := NewCollector()
	c.Record("k", Counters{Refs: 1})
	c.Record("k", Counters{Refs: 5})
	if got := c.Totals().Refs; got != 5 {
		t.Errorf("Totals.Refs after re-record = %d, want 5", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len after re-record = %d, want 1", c.Len())
	}
}

func TestReportWriteDashAndFile(t *testing.T) {
	rep := New("testtool")
	rep.Totals = Counters{Refs: 42}
	rep.Passes = []Pass{{Key: "w=li", Counters: Counters{Refs: 42}}}

	var dash bytes.Buffer
	if err := rep.Write("-", &dash); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.Write(path, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dash.Bytes(), fromFile) {
		t.Errorf("dash and file encodings differ:\n%s\n---\n%s", dash.Bytes(), fromFile)
	}
	if !strings.HasSuffix(dash.String(), "}\n") {
		t.Errorf("report does not end with newline: %q", dash.String())
	}

	var decoded Report
	if err := json.Unmarshal(dash.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded.Schema != Schema {
		t.Errorf("schema = %q, want %q", decoded.Schema, Schema)
	}
	if decoded.Tool != "testtool" {
		t.Errorf("tool = %q, want testtool", decoded.Tool)
	}
	if decoded.Totals.Refs != 42 {
		t.Errorf("totals.refs = %d, want 42", decoded.Totals.Refs)
	}
	if len(decoded.Passes) != 1 || decoded.Passes[0].Key != "w=li" {
		t.Errorf("passes round-trip mismatch: %+v", decoded.Passes)
	}
}

func TestReportWriteBadPath(t *testing.T) {
	rep := New("t")
	err := rep.Write(filepath.Join(t.TempDir(), "no", "such", "dir", "r.json"), &bytes.Buffer{})
	if err == nil {
		t.Fatal("Write to nonexistent directory succeeded, want error")
	}
}
