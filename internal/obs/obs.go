// Package obs is the run-report observability layer: it aggregates the
// plain counter structs the simulation packages already keep (tlb.Stats,
// physmem.Stats, mmu.Stats, trace.DecodeStats, policy.TwoSizeStats) into
// one schema-versioned JSON report per command invocation.
//
// The design keeps the hot paths untouched: simulation code counts into
// its own flat uint64 structs exactly as before, each engine unit
// returns its merged Counters alongside its result, and a Collector
// folds the per-unit counters together off the hot path. Merging is
// deterministic — pass entries are emitted under sorted keys, and every
// engine unit executes exactly once per run regardless of parallelism —
// so the counter sections of a report are byte-identical across -j
// values. Wall-clock fields (WallMS, per-experiment timings) and the
// parallelism level are the only run-dependent fields; tests mask them.
//
// obs sits at the bottom of the dependency tree (standard library
// only): the simulation packages convert their own stats into Counters,
// not the other way around, which keeps obs importable from core, mmu
// and the engine without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Schema identifies the report format. Bump the suffix when a field
// changes meaning or is removed; adding fields is backward-compatible
// and does not bump it.
const Schema = "twopage.run-report/v1"

// Counters is the flat counter block threaded through the simulation
// layers: every field is a plain uint64, there are no interfaces or
// pointers, and Add performs no allocation — safe to hold by value in
// structs returned from hot passes. Counts sum under Add; high-water
// marks (BuddyPeakResident) merge by max.
type Counters struct {
	// Passes counts simulation passes folded into this block.
	Passes uint64 `json:"passes,omitempty"`
	// Refs and Instrs count simulated references and instruction
	// fetches.
	Refs   uint64 `json:"refs,omitempty"`
	Instrs uint64 `json:"instrs,omitempty"`

	// TLB activity, split by page size as in tlb.Stats.
	TLBAccesses      uint64 `json:"tlb_accesses,omitempty"`
	TLBHitsSmall     uint64 `json:"tlb_hits_small,omitempty"`
	TLBHitsLarge     uint64 `json:"tlb_hits_large,omitempty"`
	TLBMissesSmall   uint64 `json:"tlb_misses_small,omitempty"`
	TLBMissesLarge   uint64 `json:"tlb_misses_large,omitempty"`
	TLBInvalidations uint64 `json:"tlb_invalidations,omitempty"`

	// TLB activity on the third and fourth size classes of an N-size
	// hierarchy. Classes 0 and 1 keep the small/large keys above so
	// every two-size report stays byte-identical; these stay zero (and
	// thus omitted) unless a run actually uses more than two sizes.
	TLBHitsSize2   uint64 `json:"tlb_hits_size2,omitempty"`
	TLBHitsSize3   uint64 `json:"tlb_hits_size3,omitempty"`
	TLBMissesSize2 uint64 `json:"tlb_misses_size2,omitempty"`
	TLBMissesSize3 uint64 `json:"tlb_misses_size3,omitempty"`

	// Policy transitions carried out during the pass. Promotions and
	// Demotions count class-1 (large-page) transitions; the Size2/Size3
	// variants count transitions into/out of the upper classes of an
	// N-size ladder and stay zero for two-size runs.
	Promotions      uint64 `json:"promotions,omitempty"`
	Demotions       uint64 `json:"demotions,omitempty"`
	PromotionsSize2 uint64 `json:"promotions_size2,omitempty"`
	PromotionsSize3 uint64 `json:"promotions_size3,omitempty"`
	DemotionsSize2  uint64 `json:"demotions_size2,omitempty"`
	DemotionsSize3  uint64 `json:"demotions_size3,omitempty"`

	// MMU activity (full-translation-path experiments only).
	// EvictionsSize2/3 split evictions of upper-class pages out as the
	// TLB counters do; they stay zero for two-size runs.
	PTWalks        uint64 `json:"pt_walks,omitempty"`
	Faults         uint64 `json:"faults,omitempty"`
	Evictions      uint64 `json:"evictions,omitempty"`
	EvictionsSize2 uint64 `json:"evictions_size2,omitempty"`
	EvictionsSize3 uint64 `json:"evictions_size3,omitempty"`
	CopiedBytes    uint64 `json:"copied_bytes,omitempty"`

	// Modeled page-walk activity (internal/walk; WithWalkModel runs
	// only). WalkCycles is the integer walk cost total, WalkLoads the
	// descriptor loads actually performed after page-walk-cache skips,
	// and the hit/miss pairs split PWC probes and memory-side accesses.
	WalkCycles    uint64 `json:"walk_cycles,omitempty"`
	WalkLoads     uint64 `json:"walk_loads,omitempty"`
	WalkPWCHits   uint64 `json:"walk_pwc_hits,omitempty"`
	WalkPWCMisses uint64 `json:"walk_pwc_misses,omitempty"`
	WalkMemHits   uint64 `json:"walk_mem_hits,omitempty"`
	WalkMemMisses uint64 `json:"walk_mem_misses,omitempty"`

	// Buddy-allocator activity (physmem.Stats). BuddyPeakResident is
	// the high-water mark of allocated 4KB frames and merges by max.
	BuddySplits       uint64 `json:"buddy_splits,omitempty"`
	BuddyCoalesces    uint64 `json:"buddy_coalesces,omitempty"`
	BuddyPeakResident uint64 `json:"buddy_peak_resident,omitempty"`

	// WSSPages counts distinct working-set pages observed by static
	// working-set passes (base page size).
	WSSPages uint64 `json:"wss_pages,omitempty"`

	// Trace decode work (v2 mmap pipeline).
	DecodedRefs   uint64 `json:"decoded_refs,omitempty"`
	DecodedBlocks uint64 `json:"decoded_blocks,omitempty"`
	DecodedBytes  uint64 `json:"decoded_bytes,omitempty"`
}

// Add merges o into c: counts sum, high-water marks take the max. It
// allocates nothing.
func (c *Counters) Add(o Counters) {
	c.Passes += o.Passes
	c.Refs += o.Refs
	c.Instrs += o.Instrs
	c.TLBAccesses += o.TLBAccesses
	c.TLBHitsSmall += o.TLBHitsSmall
	c.TLBHitsLarge += o.TLBHitsLarge
	c.TLBMissesSmall += o.TLBMissesSmall
	c.TLBMissesLarge += o.TLBMissesLarge
	c.TLBInvalidations += o.TLBInvalidations
	c.TLBHitsSize2 += o.TLBHitsSize2
	c.TLBHitsSize3 += o.TLBHitsSize3
	c.TLBMissesSize2 += o.TLBMissesSize2
	c.TLBMissesSize3 += o.TLBMissesSize3
	c.Promotions += o.Promotions
	c.Demotions += o.Demotions
	c.PromotionsSize2 += o.PromotionsSize2
	c.PromotionsSize3 += o.PromotionsSize3
	c.DemotionsSize2 += o.DemotionsSize2
	c.DemotionsSize3 += o.DemotionsSize3
	c.PTWalks += o.PTWalks
	c.Faults += o.Faults
	c.Evictions += o.Evictions
	c.EvictionsSize2 += o.EvictionsSize2
	c.EvictionsSize3 += o.EvictionsSize3
	c.CopiedBytes += o.CopiedBytes
	c.WalkCycles += o.WalkCycles
	c.WalkLoads += o.WalkLoads
	c.WalkPWCHits += o.WalkPWCHits
	c.WalkPWCMisses += o.WalkPWCMisses
	c.WalkMemHits += o.WalkMemHits
	c.WalkMemMisses += o.WalkMemMisses
	c.BuddySplits += o.BuddySplits
	c.BuddyCoalesces += o.BuddyCoalesces
	if o.BuddyPeakResident > c.BuddyPeakResident {
		c.BuddyPeakResident = o.BuddyPeakResident
	}
	c.WSSPages += o.WSSPages
	c.DecodedRefs += o.DecodedRefs
	c.DecodedBlocks += o.DecodedBlocks
	c.DecodedBytes += o.DecodedBytes
}

// Pass is one executed engine unit's counters under its memoization key.
type Pass struct {
	Key string `json:"key"`
	Counters
}

// Collector accumulates per-pass counters from worker goroutines. The
// zero value is not usable; construct with NewCollector. All methods
// are safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	passes map[string]Counters
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{passes: make(map[string]Counters)}
}

// Record stores the counters of one executed unit under its key. A key
// recorded twice (a unit retried after a canceled first requester)
// overwrites: the same key always denotes the same deterministic work,
// so last-write-wins keeps the report independent of retry order.
func (c *Collector) Record(key string, ct Counters) {
	c.mu.Lock()
	c.passes[key] = ct
	c.mu.Unlock()
}

// Passes returns the recorded per-pass counters sorted by key.
func (c *Collector) Passes() []Pass {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.passes))
	for k := range c.passes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Pass, len(keys))
	for i, k := range keys {
		out[i] = Pass{Key: k, Counters: c.passes[k]}
	}
	return out
}

// Totals merges every recorded pass into one counter block. The merge
// runs over sorted keys; with sums and maxes it is order-independent
// anyway, but sorting keeps the invariant obvious.
func (c *Collector) Totals() Counters {
	var total Counters
	for _, p := range c.Passes() {
		total.Add(p.Counters)
	}
	return total
}

// Len returns how many distinct passes have been recorded.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.passes)
}

// EngineStats mirrors the experiment engine's pool/cache counters in
// report form (defined here so obs does not import the engine).
type EngineStats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	CacheHits int64 `json:"cache_hits"`
}

// ExperimentStatus reports one experiment's outcome and wall time.
type ExperimentStatus struct {
	ID string `json:"id"`
	// WallMS is wall-clock and therefore run-dependent; tests mask it.
	WallMS int64 `json:"wall_ms"`
	// Error is empty for a successful experiment.
	Error string `json:"error,omitempty"`
}

// Report is one command invocation's run report. Counter sections
// (Engine, Totals, Passes) are deterministic for a given tool, scale
// and workload set; Parallelism, WallMS and the per-experiment timings
// are the only fields that vary between otherwise identical runs.
type Report struct {
	Schema    string   `json:"schema"`
	Tool      string   `json:"tool"`
	Scale     float64  `json:"scale,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	Parallelism int   `json:"parallelism,omitempty"`
	WallMS      int64 `json:"wall_ms"`

	Engine      *EngineStats       `json:"engine,omitempty"`
	Totals      Counters           `json:"totals"`
	Passes      []Pass             `json:"passes,omitempty"`
	Experiments []ExperimentStatus `json:"experiments,omitempty"`
}

// New returns a report stamped with the schema version and tool name.
func New(tool string) *Report {
	return &Report{Schema: Schema, Tool: tool}
}

// WriteJSON emits the report as indented JSON followed by a newline.
// Field order is fixed by the struct definitions and passes are sorted
// by key, so the encoding is stable.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding run report: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("obs: writing run report: %w", err)
	}
	return nil
}

// Write resolves a -stats destination: "-" writes to dash (the
// command's stderr, keeping stdout byte-identical to a report-less
// run), anything else creates or truncates that file.
func (r *Report) Write(spec string, dash io.Writer) error {
	if spec == "-" {
		return r.WriteJSON(dash)
	}
	f, err := os.Create(spec)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}
