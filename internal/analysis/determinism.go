package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism returns the analyzer that guards byte-identical
// experiment output. Three constructs silently break the "same table
// for any -j" contract (golden corpus, j1-vs-j8 tests) and are flagged
// in every package that feeds rendered output:
//
//   - range over a map: Go randomizes iteration order per run, so any
//     map-fed table row, note, or accumulation with order-dependent
//     semantics differs between runs. Iterate sorted keys instead, or
//     suppress with a justification when the reduction is provably
//     order-independent (e.g. integer sums).
//   - time.Now: wall-clock values must never reach rendered output;
//     timing belongs on stderr or in explicitly masked golden cells.
//   - global math/rand: the shared source's stream depends on every
//     other consumer in the process (and on Go version). Use an
//     explicitly seeded rand.New(rand.NewSource(seed)) or the repo's
//     xorshift generators.
func Determinism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "flags map iteration, time.Now and unseeded math/rand in output-feeding packages",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if t := pass.TypesInfo.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok && !isKeyCollect(n) {
							pass.Reportf(n.Pos(), "range over map %s: iteration order is randomized; iterate sorted keys (or justify with //paperlint:ignore determinism)", exprString(n.X))
						}
					}
				case *ast.CallExpr:
					fn := calleeFunc(pass.TypesInfo, n)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					switch fn.Pkg().Path() {
					case "time":
						if fn.Name() == "Now" {
							pass.Reportf(n.Pos(), "time.Now in an output-feeding package: wall-clock values break byte-identical output")
						}
					case "math/rand", "math/rand/v2":
						if isPackageLevel(fn) && !isRandConstructor(fn.Name()) {
							pass.Reportf(n.Pos(), "%s.%s uses the global rand source: seed an explicit rand.New(rand.NewSource(...)) instead", fn.Pkg().Name(), fn.Name())
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isKeyCollect recognizes the first half of the canonical
// sort-the-keys fix — a map range whose body does nothing but append
// keys/values to slices:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//
// The collection itself is order-independent once the slice is sorted,
// so it is exempt; every other map-range body is flagged.
func isKeyCollect(r *ast.RangeStmt) bool {
	if len(r.Body.List) == 0 || len(r.Body.List) > 2 {
		return false
	}
	for _, st := range r.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
	}
	return true
}

// isRandConstructor reports whether a math/rand package-level function
// builds an independent generator rather than consuming the global one.
func isRandConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}

// isPackageLevel reports whether fn is a package-level function (not a
// method), i.e. a call through the package's global state for math/rand.
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// exprString renders a short source form of simple expressions for
// diagnostics (identifiers, selectors, indexes); anything else prints
// as "expression".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "expression"
}
