package analysis_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"twopage/internal/analysis"
)

// TestSuppressionsStale exercises the directive-usage ledger: a
// directive consulted by a matching diagnostic is used; everything else
// surfaces as a staleignore finding in stable order.
func TestSuppressionsStale(t *testing.T) {
	const src = `//paperlint:ignore powtwo file-wide, consulted below
package p

var a = 1 //paperlint:ignore hotalloc used on its own line

//paperlint:ignore determinism applies to the next line, also used
var b = 2

var c = 3 //paperlint:ignore errfmt never consulted: goes stale
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := analysis.NewSuppressions(fset)
	s.AddFiles(f)

	at := func(line int) token.Position {
		return token.Position{Filename: "stale.go", Line: line}
	}
	if !s.Suppressed("powtwo", at(8)) {
		t.Error("file-wide directive did not suppress")
	}
	if !s.Suppressed("hotalloc", at(4)) {
		t.Error("same-line directive did not suppress")
	}
	if !s.Suppressed("determinism", at(7)) {
		t.Error("line-above directive did not suppress")
	}
	if s.Suppressed("errfmt", at(2)) {
		t.Error("errfmt directive suppressed a diagnostic on an unrelated line")
	}
	if s.Suppressed("mergecheck", at(4)) {
		t.Error("unrelated analyzer suppressed by hotalloc directive")
	}

	stale := s.Stale()
	if len(stale) != 1 {
		t.Fatalf("got %d stale directives, want 1: %v", len(stale), stale)
	}
	d := stale[0]
	if d.Analyzer != analysis.StaleIgnoreName {
		t.Errorf("stale diagnostic analyzer = %q, want %q", d.Analyzer, analysis.StaleIgnoreName)
	}
	if d.Pos.Line != 9 || !strings.Contains(d.Message, "errfmt") {
		t.Errorf("stale diagnostic = %v, want the errfmt directive on line 9", d)
	}
}
