package analysis

import (
	"go/ast"
	"go/types"
)

// refConsumers are the method/function names that advance a reference
// stream or drive per-reference simulation work. A loop around one of
// these can run for the whole trace (hundreds of millions of
// iterations at full scale), which is exactly the loop that must poll
// cancellation.
var refConsumers = map[string]bool{
	"Read":    true,
	"Access":  true,
	"Assign":  true,
	"Step":    true,
	"Observe": true,
}

// CtxCheck returns the analyzer enforcing the PR 1 cancellation
// contract: a function that accepts a context and then processes a
// reference stream must poll that context at a bounded interval. The
// concrete rule: inside any function with a context.Context parameter,
// a non-range for loop whose body calls a reference-consuming method
// (Read, Access, Assign, Step, Observe) must mention the context —
// ctx.Err(), ctx.Done(), or passing ctx to a helper that checks it.
//
// Range loops are exempt: they are bounded by their operand (a decoded
// batch of at most 8192 references), which is the granularity the
// contract allows between polls. The dangerous shape is the unbounded
// for {} or for cond {} drain loop that would run to the end of a
// multi-hundred-million-reference trace after the caller has given up.
func CtxCheck() *Analyzer {
	a := &Analyzer{
		Name: "ctxcheck",
		Doc:  "flags unbounded reference-processing loops that do not poll their context",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkCtxFunc(pass, n.Type, n.Body)
					}
				case *ast.FuncLit:
					checkCtxFunc(pass, n.Type, n.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkCtxFunc inspects one function that may hold a context parameter.
func checkCtxFunc(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxVars := contextParams(pass.TypesInfo, ft)
	if len(ctxVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested functions are checked on their own visit
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if !callsRefConsumer(pass.TypesInfo, loop) {
			return true
		}
		if mentionsAny(pass.TypesInfo, loop, ctxVars) {
			return true
		}
		pass.Reportf(loop.Pos(), "unbounded loop consumes references without polling ctx; check ctx.Err() (or pass ctx to the drain helper) at a bounded batch interval")
		return true
	})
}

// contextParams collects the function's parameters of type
// context.Context.
func contextParams(info *types.Info, ft *ast.FuncType) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if ok && isContextType(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// callsRefConsumer reports whether the loop body (excluding nested
// function literals) calls a reference-consuming method.
func callsRefConsumer(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil && refConsumers[fn.Name()] {
			found = true
		}
		return true
	})
	return found
}

// mentionsAny reports whether any identifier in the loop (condition or
// body, including calls that forward the variable) resolves to one of
// the given variables.
func mentionsAny(info *types.Info, node ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}
