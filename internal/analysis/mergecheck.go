package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MergeCheck returns the analyzer pinning the sharded-merge
// exhaustiveness invariant: any struct with a Merge/Sub/Add-shaped
// method — a method named Merge, Sub or Add taking exactly one
// parameter of the receiver's own struct type — must reference every
// counter field of the struct somewhere in that method or its static
// callees.
//
// The intra-trace sharded simulation (DESIGN.md §10) reassembles a run
// from per-shard stats structs; a counter field that Merge never
// mentions is silently dropped from every sharded run, and a field
// that Sub never mentions survives warm-up roll-back inflated by the
// preroll's traffic. Both bugs are invisible to the type checker and
// historically were guarded only by a runtime reflection test in
// internal/obs. This analyzer makes the invariant structural: add a
// field to tlb.Stats, policy.TwoSizeStats, policy.LadderStats,
// pagetable.Stats, obs.Counters — or any future stats type with a
// merge-shaped method — and the lint run fails until the method
// handles it.
//
// Counter fields are the numeric fields and arrays of numerics. A
// field that is a gauge — current state with last-writer or
// carry-from-last-shard semantics rather than a summable flow — is
// opted out by annotating its declaration with
//
//	//paperlint:gauge reason
//
// (in the field's doc comment or trailing line comment). "Referenced"
// means any mention of the field object, read or write, so max-merged
// high-water marks and conditional carries count; the analyzer checks
// presence, not arithmetic — the shard-invariance battery remains the
// semantic backstop.
func MergeCheck() *Analyzer {
	a := &Analyzer{
		Name: "mergecheck",
		Doc:  "merge-shaped stats methods must reference every counter field of their struct",
	}
	a.Run = func(pass *Pass) error {
		gauges := gaugeFields(pass)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Recv == nil || d.Body == nil {
					continue
				}
				switch d.Name.Name {
				case "Merge", "Sub", "Add":
				default:
					continue
				}
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				named, st := receiverStruct(fn)
				if named == nil {
					continue
				}
				sig := fn.Type().(*types.Signature)
				if sig.Params().Len() != 1 || !types.Identical(deref(sig.Params().At(0).Type()), named) {
					continue // Add(key, delta) and friends are not merge-shaped
				}
				closure := pass.Prog.Closure(fn, false)
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if !isCounterType(f.Type()) || gauges[f] {
						continue
					}
					if !pass.Prog.FieldUsed(closure, f) {
						pass.Reportf(d.Name.Pos(),
							"%s.%s does not reference counter field %s: a sharded merge would silently drop it (handle the field, or annotate it //paperlint:gauge with a reason if it is state, not flow)",
							named.Obj().Name(), d.Name.Name, f.Name())
					}
				}
			}
		}
		return nil
	}
	return a
}

// receiverStruct resolves a method's receiver to its named struct type,
// or nil when the receiver is not a (pointer to a) named struct.
func receiverStruct(fn *types.Func) (*types.Named, *types.Struct) {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil, nil
	}
	named, ok := deref(sig.Recv().Type()).(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isCounterType reports whether a field type is a counter in the merge
// sense: a numeric, or an array of counters.
func isCounterType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Array:
		return isCounterType(u.Elem())
	}
	return false
}

// gaugeFields collects the struct fields of the package annotated
// //paperlint:gauge (doc comment above the field or line comment after
// it).
func gaugeFields(pass *Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasGaugeDirective(field.Doc) && !hasGaugeDirective(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func hasGaugeDirective(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.HasPrefix(c.Text, directivePrefix+"gauge") {
			return true
		}
	}
	return false
}
