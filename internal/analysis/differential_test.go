package analysis_test

// Differential exhaustiveness tests: the fixture structs are GENERATED
// from the real stats/config types via reflection, so they track the
// shipped field sets automatically. For each field we emit a copy of
// the type whose Merge (or Key) references every field except that one
// and assert the analyzer reports exactly the dropped field — proving
// the analyzers would catch a real newly added field the moment a
// merge or key method failed to mention it.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"

	"twopage/internal/analysis"
	"twopage/internal/tlb"
)

// goType renders a reflect type kind-for-kind as fixture source. Named
// types collapse to their kinds (IndexScheme → uint8): the analyzers
// care about shape, not names.
func goType(t reflect.Type) string {
	switch t.Kind() {
	case reflect.Slice:
		return "[]" + goType(t.Elem())
	case reflect.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), goType(t.Elem()))
	case reflect.Func:
		return "func()"
	case reflect.Interface:
		return "interface{}"
	default:
		return t.Kind().String()
	}
}

func isCounterKind(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Array:
		return isCounterKind(t.Elem())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// checkSource type-checks one generated file and runs the analyzers on
// it, failing the test on parse or type errors (a broken generator, not
// a finding).
func checkSource(t *testing.T, src string, analyzers ...*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "diff.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing generated fixture: %v\n%s", err, src)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("diff", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking generated fixture: %v\n%s", err, src)
	}
	diags, err := analysis.Run(fset, []*ast.File{f}, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags
}

// genStruct renders the reflected struct type under the given name.
func genStruct(name string, st reflect.Type) string {
	var b strings.Builder
	fmt.Fprintf(&b, "type %s struct {\n", name)
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		fmt.Fprintf(&b, "\t%s %s\n", f.Name, goType(f.Type))
	}
	b.WriteString("}\n\n")
	return b.String()
}

// genMergeFixture emits a Stats copy whose Merge references every field
// except drop (empty drop references all).
func genMergeFixture(st reflect.Type, drop string) string {
	var b strings.Builder
	b.WriteString("package diff\n\n")
	b.WriteString(genStruct("Stats", st))
	b.WriteString("func (s *Stats) Merge(o Stats) {\n")
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if name == drop {
			continue
		}
		fmt.Fprintf(&b, "\t_ = s.%s\n\t_ = o.%s\n", name, name)
	}
	b.WriteString("}\n")
	return b.String()
}

func TestMergeCheckDifferential(t *testing.T) {
	st := reflect.TypeOf(tlb.Stats{})
	if ds := checkSource(t, genMergeFixture(st, ""), analysis.MergeCheck()); len(ds) != 0 {
		t.Fatalf("full Merge over generated tlb.Stats: unexpected findings %v", ds)
	}
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !isCounterKind(f.Type) {
			continue
		}
		ds := checkSource(t, genMergeFixture(st, f.Name), analysis.MergeCheck())
		if len(ds) != 1 {
			t.Errorf("dropping tlb.Stats.%s from Merge: got %d findings, want 1: %v", f.Name, len(ds), ds)
			continue
		}
		if !strings.Contains(ds[0].Message, "counter field "+f.Name) {
			t.Errorf("dropping tlb.Stats.%s: finding does not name the field: %s", f.Name, ds[0].Message)
		}
	}
}

// genKeyFixture emits a Config copy whose Key references every non-func
// field except drop.
func genKeyFixture(st reflect.Type, drop string) string {
	var b strings.Builder
	b.WriteString("package diff\n\n")
	b.WriteString(genStruct("Config", st))
	b.WriteString("func (c Config) Key() (string, error) {\n")
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Name == drop || f.Type.Kind() == reflect.Func {
			continue
		}
		fmt.Fprintf(&b, "\t_ = c.%s\n", f.Name)
	}
	b.WriteString("\treturn \"\", nil\n}\n")
	return b.String()
}

func TestKeyCheckDifferential(t *testing.T) {
	st := reflect.TypeOf(tlb.Config{})
	if ds := checkSource(t, genKeyFixture(st, ""), analysis.KeyCheck()); len(ds) != 0 {
		t.Fatalf("full Key over generated tlb.Config: unexpected findings %v", ds)
	}
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() == reflect.Func {
			continue // hook fields are exempt from keys by design
		}
		ds := checkSource(t, genKeyFixture(st, f.Name), analysis.KeyCheck())
		if len(ds) != 1 {
			t.Errorf("dropping tlb.Config.%s from Key: got %d findings, want 1: %v", f.Name, len(ds), ds)
			continue
		}
		if !strings.Contains(ds[0].Message, "field Config."+f.Name) {
			t.Errorf("dropping tlb.Config.%s: finding does not name the field: %s", f.Name, ds[0].Message)
		}
	}
}
