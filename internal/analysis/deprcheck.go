package analysis

import (
	"go/ast"
	"go/types"
)

// DeprCheck returns the analyzer replacing the old `make
// deprecation-gate` grep: no identifier whose declaration carries the
// conventional "Deprecated:" doc marker may be used outside its
// defining package.
//
// Deprecated names in this repository are compatibility shims — the
// SmallShift/LargeShift config fields that predate the N-size Shifts
// slice, the mmu.Stats.LargeEvictions alias — kept so old experiment
// files and their goldens still load. The defining package normalizes
// them away at the boundary; any *other* package reaching for them is
// new code written against the dead API. The grep this check replaces
// matched bare identifier text, so it could not tell
// tlb.Config.LargeShift (deprecated) from policy.TwoSizeConfig's
// like-named field (current) and had to under-gate; the object-based
// check distinguishes them and gates both spellings precisely.
//
// The defining package itself is exempt — it must keep reading the
// fields to normalize them — and so are uses inside the declaration
// being marked (a deprecated function's own body).
func DeprCheck() *Analyzer {
	a := &Analyzer{
		Name: "deprcheck",
		Doc:  "flags uses of Deprecated-marked declarations outside their defining package",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
					return true
				}
				note, ok := pass.Prog.Deprecated(obj)
				if !ok {
					return true
				}
				pass.Reportf(id.Pos(), "use of deprecated %s %s (Deprecated: %s)",
					objKind(obj), objName(obj), note)
				return true
			})
		}
		return nil
	}
	return a
}

// objKind names the declaration class for the diagnostic.
func objKind(obj types.Object) string {
	switch o := obj.(type) {
	case *types.Func:
		if o.Type().(*types.Signature).Recv() != nil {
			return "method"
		}
		return "function"
	case *types.TypeName:
		return "type"
	case *types.Const:
		return "constant"
	case *types.Var:
		if o.IsField() {
			return "field"
		}
		return "variable"
	}
	return "identifier"
}

// objName qualifies the object with its package name; alongside the
// diagnostic position that is unambiguous without reconstructing the
// owning struct or receiver.
func objName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
