// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools go/analysis model, carrying the five analyzers that
// mechanically enforce this repository's invariants:
//
//   - determinism: no map iteration, wall-clock reads or global
//     math/rand in packages that feed rendered experiment output (the
//     golden corpus and the j1-vs-j8 tests depend on byte-identical
//     tables at any parallelism);
//   - hotalloc: no allocation-inducing constructs inside functions
//     annotated //paperlint:hot (the decode/simulate loops that the
//     AllocsPerRun==0 tests pin to zero steady-state allocations);
//   - powtwo: page sizes and TLB/cache geometries that reach
//     constructors as constants must be aligned powers of two, the
//     paper's standing assumption (Section 1: "pages aligned and
//     power-of-two sized");
//   - ctxcheck: unbounded reference-processing loops in the simulation
//     drivers must poll their context (the PR 1 cancellation contract:
//     a check at least once per batch);
//   - errfmt: errors wrapped with fmt.Errorf must use %w, and error
//     returns must not be silently dropped in the trace/workload I/O
//     paths.
//
// The model mirrors x/tools deliberately — Analyzer with a Run func,
// Pass carrying files and type information, Reportf for diagnostics —
// so the suite can migrate to the real framework wholesale if the
// dependency ever becomes available. Only the stdlib go/ast, go/token
// and go/types packages are used.
//
// # Suppression
//
// A comment of the form
//
//	//paperlint:ignore analyzer[,analyzer...] reason
//
// suppresses the named analyzers. Placed in the file header (before or
// attached to the package clause) it suppresses them for the whole
// file; placed on or immediately above an offending line it suppresses
// diagnostics on that line only. The reason text is free-form but
// should say why the construct is safe (e.g. "order-independent
// uint64 sum").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position // resolved file:line:col
	Analyzer string         // analyzer name
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects the Pass's package and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //paperlint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. A non-nil error aborts the whole lint run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces every paperlint comment directive.
const directivePrefix = "//paperlint:"

// ignores records the //paperlint:ignore directives of one file.
type ignores struct {
	file map[string]bool         // analyzer -> suppressed for whole file
	line map[int]map[string]bool // line -> analyzer -> suppressed
}

// parseIgnores walks a file's comments for ignore directives. Header
// placement (any comment line before or on the package clause line)
// makes the directive file-wide; anywhere else it applies to its own
// line and the line below, so it can trail the offending statement or
// sit on its own line above it.
func parseIgnores(fset *token.FileSet, f *ast.File) ignores {
	ig := ignores{file: map[string]bool{}, line: map[int]map[string]bool{}}
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore")
			if !ok {
				continue
			}
			names := parseAnalyzerList(rest)
			if len(names) == 0 {
				continue
			}
			ln := fset.Position(c.Pos()).Line
			if ln <= pkgLine {
				for _, n := range names {
					ig.file[n] = true
				}
				continue
			}
			for _, target := range []int{ln, ln + 1} {
				m := ig.line[target]
				if m == nil {
					m = map[string]bool{}
					ig.line[target] = m
				}
				for _, n := range names {
					m[n] = true
				}
			}
		}
	}
	return ig
}

// parseAnalyzerList extracts analyzer names from the text after
// "//paperlint:ignore": the first whitespace-delimited field is a
// comma-separated list of analyzer names; everything after it is the
// free-form reason. A field containing anything but lowercase names
// yields no suppression at all, so a typo fails loudly (the diagnostic
// survives) instead of silently widening the ignore.
func parseAnalyzerList(s string) []string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, part := range strings.Split(fields[0], ",") {
		if part == "" {
			continue
		}
		if !isAnalyzerName(part) {
			return nil
		}
		names = append(names, part)
	}
	return names
}

func isAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// Run applies the analyzers to one type-checked package and returns the
// surviving (unsuppressed) diagnostics sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	perFile := make(map[string]ignores, len(files))
	for _, f := range files {
		perFile[fset.Position(f.Package).Filename] = parseIgnores(fset, f)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(d Diagnostic) {
				ig, ok := perFile[d.Pos.Filename]
				if ok && (ig.file[d.Analyzer] || ig.line[d.Pos.Line][d.Analyzer]) {
					return
				}
				out = append(out, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders diagnostics by file, line, column, analyzer, message —
// the stable order the driver prints and serializes.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the production-configured analyzer suite in reporting
// order. The powtwo analyzer takes the repository's real target tables;
// tests swap in testdata-local ones.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		HotAlloc(),
		PowTwo(DefaultPowTwoConfig()),
		CtxCheck(),
		ErrFmt(),
	}
}
