// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools go/analysis model, carrying the analyzers that
// mechanically enforce this repository's invariants:
//
//   - determinism: no map iteration, wall-clock reads or global
//     math/rand in packages that feed rendered experiment output (the
//     golden corpus and the j1-vs-j8 tests depend on byte-identical
//     tables at any parallelism);
//   - hotalloc: no allocation-inducing constructs inside functions
//     annotated //paperlint:hot (the decode/simulate loops that the
//     AllocsPerRun==0 tests pin to zero steady-state allocations), nor
//     inside the static callees such functions reach — the call graph
//     closes the "alloc hidden one call down" hole;
//   - powtwo: page sizes and TLB/cache geometries that reach
//     constructors as constants must be aligned powers of two, the
//     paper's standing assumption (Section 1: "pages aligned and
//     power-of-two sized");
//   - ctxcheck: unbounded reference-processing loops in the simulation
//     drivers must poll their context (the PR 1 cancellation contract:
//     a check at least once per batch);
//   - errfmt: errors wrapped with fmt.Errorf must use %w, and error
//     returns must not be silently dropped in the trace/workload I/O
//     paths;
//   - mergecheck: every Merge/Sub/Add-shaped stats method must
//     reference every counter field of its struct, so the intra-trace
//     sharded merge cannot silently drop a newly added counter
//     (//paperlint:gauge opts a state field out, with a reason);
//   - keycheck: every Key-shaped method feeding the engine memo cache
//     must reference every field of its config struct (and of the
//     nested module config structs it embeds in the key), so two
//     configurations differing only in a new knob cannot collide in
//     the cache;
//   - deprcheck: no use of a declaration carrying the conventional
//     "Deprecated:" doc marker outside its defining package.
//
// The model mirrors x/tools deliberately — Analyzer with a Run func,
// Pass carrying files and type information, Reportf for diagnostics —
// so the suite can migrate to the real framework wholesale if the
// dependency ever becomes available. Only the stdlib go/ast, go/token
// and go/types packages are used. Interprocedural analyzers consume a
// Program (call graph, field-use facts, deprecation index) built once
// over all loaded packages.
//
// # Suppression
//
// A comment of the form
//
//	//paperlint:ignore analyzer[,analyzer...] reason
//
// suppresses the named analyzers. Placed in the file header (before or
// attached to the package clause) it suppresses them for the whole
// file; placed on or immediately above an offending line it suppresses
// diagnostics on that line only. The reason text is free-form but
// should say why the construct is safe (e.g. "order-independent
// uint64 sum"). Suppressions are tracked: a directive that suppresses
// nothing in a whole run is itself reported (analyzer "staleignore"),
// so justified ignores cannot rot silently after the code they excuse
// is fixed or deleted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position // resolved file:line:col
	Analyzer string         // analyzer name
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects the Pass's package and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //paperlint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. A non-nil error aborts the whole lint run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog holds whole-program facts (call graph, field uses,
	// deprecation index) spanning every loaded package.
	Prog *Program
	// Supp is the run-wide suppression table; analyzers that pre-filter
	// findings outside the normal report path (interprocedural hotalloc
	// honoring a callee-local ignore) must consult it so directive
	// usage is tracked.
	Supp *Suppressions

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces every paperlint comment directive.
const directivePrefix = "//paperlint:"

// StaleIgnoreName is the analyzer name under which unused
// //paperlint:ignore directives are reported.
const StaleIgnoreName = "staleignore"

// directive is one parsed //paperlint:ignore comment.
type directive struct {
	pos      token.Position
	names    []string
	nameSet  map[string]bool
	fileWide bool
	used     bool
}

// fileSupp holds one file's directives plus the line lookup table (a
// line-scoped directive applies to its own line and the line below, so
// it can trail the offending statement or sit on its own line above).
type fileSupp struct {
	directives []*directive
	fileWide   []*directive
	byLine     map[int][]*directive
}

// Suppressions is the run-wide //paperlint:ignore table. It records
// which directives actually suppressed a diagnostic, so the driver can
// report the stale remainder after all analyzers have run.
type Suppressions struct {
	fset  *token.FileSet
	files map[string]*fileSupp
}

// NewSuppressions returns an empty suppression table.
func NewSuppressions(fset *token.FileSet) *Suppressions {
	return &Suppressions{fset: fset, files: map[string]*fileSupp{}}
}

// AddFiles parses the //paperlint:ignore directives of the given files
// into the table. Header placement (any comment line before or on the
// package clause line) makes a directive file-wide.
func (s *Suppressions) AddFiles(files ...*ast.File) {
	for _, f := range files {
		fs := &fileSupp{byLine: map[int][]*directive{}}
		pkgLine := s.fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore")
				if !ok {
					continue
				}
				names := parseAnalyzerList(rest)
				if len(names) == 0 {
					continue
				}
				d := &directive{pos: s.fset.Position(c.Pos()), names: names, nameSet: map[string]bool{}}
				for _, n := range names {
					d.nameSet[n] = true
				}
				fs.directives = append(fs.directives, d)
				if d.pos.Line <= pkgLine {
					d.fileWide = true
					fs.fileWide = append(fs.fileWide, d)
					continue
				}
				for _, target := range []int{d.pos.Line, d.pos.Line + 1} {
					fs.byLine[target] = append(fs.byLine[target], d)
				}
			}
		}
		s.files[s.fset.Position(f.Package).Filename] = fs
	}
}

// Suppressed reports whether a diagnostic of the named analyzer at pos
// is suppressed, marking every matching directive as used.
func (s *Suppressions) Suppressed(analyzer string, pos token.Position) bool {
	fs := s.files[pos.Filename]
	if fs == nil {
		return false
	}
	hit := false
	for _, d := range fs.fileWide {
		if d.nameSet[analyzer] {
			d.used = true
			hit = true
		}
	}
	for _, d := range fs.byLine[pos.Line] {
		if d.nameSet[analyzer] {
			d.used = true
			hit = true
		}
	}
	return hit
}

// Stale returns one diagnostic per directive that suppressed nothing,
// in stable position order. Call it after every analyzer has run on
// every package; a directive naming an analyzer that no longer fires on
// its line is dead weight whose justification no longer matches the
// code, and must be fixed or deleted.
func (s *Suppressions) Stale() []Diagnostic {
	var out []Diagnostic
	for _, fs := range s.files {
		for _, d := range fs.directives {
			if d.used {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: StaleIgnoreName,
				Message: fmt.Sprintf("//paperlint:ignore %s suppresses no finding; fix or delete the stale directive",
					strings.Join(d.names, ",")),
			})
		}
	}
	Sort(out)
	return out
}

// parseAnalyzerList extracts analyzer names from the text after
// "//paperlint:ignore": the first whitespace-delimited field is a
// comma-separated list of analyzer names; everything after it is the
// free-form reason. A field containing anything but lowercase names
// yields no suppression at all, so a typo fails loudly (the diagnostic
// survives) instead of silently widening the ignore.
func parseAnalyzerList(s string) []string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, part := range strings.Split(fields[0], ",") {
		if part == "" {
			continue
		}
		if !isAnalyzerName(part) {
			return nil
		}
		names = append(names, part)
	}
	return names
}

func isAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return true
}

// Run applies the analyzers to one type-checked package and returns the
// surviving (unsuppressed) diagnostics sorted by position. It builds a
// single-package Program and suppression table internally; drivers that
// analyze several packages should build both once and use RunPkg so
// interprocedural facts and suppression-usage tracking span the whole
// run.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(fset, info)
	prog.AddPackage(pkg, files)
	supp := NewSuppressions(fset)
	supp.AddFiles(files...)
	return RunPkg(prog, supp, pkg, files, analyzers)
}

// RunPkg applies the analyzers to one package using shared
// whole-program facts and a shared suppression table, returning the
// surviving diagnostics sorted by position.
func RunPkg(prog *Program, supp *Suppressions, pkg *types.Package, files []*ast.File, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: prog.Info,
			Prog:      prog,
			Supp:      supp,
			report: func(d Diagnostic) {
				if supp.Suppressed(d.Analyzer, d.Pos) {
					return
				}
				out = append(out, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders diagnostics by file, line, column, analyzer, message —
// the stable order the driver prints and serializes.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the production-configured analyzer suite in reporting
// order. The powtwo analyzer takes the repository's real target tables;
// tests swap in testdata-local ones.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		HotAlloc(),
		PowTwo(DefaultPowTwoConfig()),
		CtxCheck(),
		ErrFmt(),
		MergeCheck(),
		KeyCheck(),
		DeprCheck(),
	}
}
