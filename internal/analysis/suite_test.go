package analysis_test

import (
	"testing"

	"twopage/internal/analysis"
	"twopage/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", "determinism", analysis.Determinism())
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", "hotalloc", analysis.HotAlloc())
}

func TestPowTwo(t *testing.T) {
	cfg := analysis.PowTwoConfig{
		Targets: []analysis.PowTwoTarget{
			{Func: "powtwo/fake.NewSingle", Args: []int{0}},
			{Func: "powtwo/fake.Measure", Rest: 1},
		},
		Geometries: []analysis.PowTwoGeometry{
			{
				Type:       "powtwo/fake.Config",
				PowFields:  []string{"Block"},
				TotalField: "Entries",
				WaysField:  "Ways",
			},
		},
		Ascending: []analysis.PowTwoAscending{
			{Func: "powtwo/fake.NewSizeClasses"},
		},
		Validators: []string{"MustPow2"},
	}
	analysistest.Run(t, "testdata", "powtwo", analysis.PowTwo(cfg))
}

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, "testdata", "ctxcheck", analysis.CtxCheck())
}

func TestErrFmt(t *testing.T) {
	analysistest.Run(t, "testdata", "errfmt", analysis.ErrFmt())
}

func TestMergeCheck(t *testing.T) {
	analysistest.Run(t, "testdata", "mergecheck", analysis.MergeCheck())
}

func TestKeyCheck(t *testing.T) {
	analysistest.Run(t, "testdata", "keycheck", analysis.KeyCheck())
}

func TestDeprCheck(t *testing.T) {
	analysistest.Run(t, "testdata", "deprcheck", analysis.DeprCheck())
}
