package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrFmt returns the analyzer guarding the error-handling conventions
// of the I/O paths (trace open/decode, workload registration):
//
//   - fmt.Errorf that formats an error argument must use %w, so
//     callers can match the cause with errors.Is/errors.As (the format
//     sniffing in trace.OpenPath depends on ErrNotV2 surviving
//     wrapping);
//   - a call whose result set includes an error must not be used as a
//     bare statement: the error vanishes silently. Assign it
//     (_ = f() when the drop is deliberate) or handle it. Deferred
//     Close-style calls are exempt — the idiomatic defer f.Close() on
//     read-only paths is accepted.
func ErrFmt() *Analyzer {
	a := &Analyzer{
		Name: "errfmt",
		Doc:  "flags fmt.Errorf wrapping without %w and silently dropped error returns",
	}
	a.Run = func(pass *Pass) error {
		errType := types.Universe.Lookup("error").Type()
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(pass, n, errType)
				case *ast.ExprStmt:
					call, ok := ast.Unparen(n.X).(*ast.CallExpr)
					if !ok {
						return true
					}
					if returnsError(pass.TypesInfo, call, errType) {
						pass.Reportf(n.Pos(), "call result includes an error that is silently dropped; handle it or discard explicitly with _ =")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkErrorf flags fmt.Errorf calls that pass an error value without a
// %w verb in the format string.
func checkErrorf(pass *Pass, call *ast.CallExpr, errType types.Type) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constStringValue(pass.TypesInfo, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil {
			continue
		}
		if types.AssignableTo(t, errType) {
			pass.Reportf(arg.Pos(), "error formatted into fmt.Errorf without %%w: the cause is lost to errors.Is/errors.As; wrap it")
			return
		}
	}
}

// returnsError reports whether any of the call's results is an error.
func returnsError(info *types.Info, call *ast.CallExpr, errType types.Type) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// constStringValue extracts a string constant from a typed expression.
func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
