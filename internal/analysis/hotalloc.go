package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// HotAlloc returns the analyzer enforcing zero steady-state allocations
// in annotated hot paths. A function (or function literal) marked with
// a //paperlint:hot comment — the trace decode loop, the TLB access
// path, the working-set step, the core simulate loop — must not contain
// allocation-inducing constructs:
//
//   - calls into fmt (formatting allocates for the variadic box and the
//     result string);
//   - string concatenation with + (builds a new string per evaluation);
//   - append, make, new;
//   - slice/map composite literals and &T{} (escaping composites);
//   - function literals that capture enclosing variables (the closure
//     and its captured cells are heap-allocated);
//   - explicit conversions to interface types (the boxed value
//     escapes).
//
// Arguments to panic are exempt everywhere: a panicking path is
// terminal, so the fmt.Sprintf building a panic message is not a
// steady-state allocation (the addr geometry guards panic this way).
//
// The check is interprocedural: the hot function's static callees are
// traversed through the program call graph (transitively, within the
// module), so an allocation hidden one call down is reported at the
// call site that drags it into the hot path. Callees that are
// themselves //paperlint:hot are skipped — they are hot roots analyzed
// in their own right. Calls the graph cannot resolve statically
// (interface dispatch, function values) are not traversed; the
// concrete implementations behind the simulator's interfaces carry
// their own hot annotations.
//
// One-time warm-up allocations (growing a scratch buffer on first use)
// are legitimate; suppress them line by line with
// //paperlint:ignore hotalloc and a justification — on the construct's
// own line (which also silences every hot caller reaching it) or on
// the call-site line in the hot function. The AllocsPerRun==0 tests
// remain the runtime backstop; this analyzer catches regressions at
// lint time and names the construct.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocation-inducing constructs inside //paperlint:hot functions and their static callees",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			hotLines := hotDirectiveLines(pass.Fset, f)
			if len(hotLines) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil && isHotDecl(pass.Fset, n, hotLines) {
						checkHotBody(pass, n.Body, n.Name.Name)
						return false // the body is fully checked; don't re-enter
					}
				case *ast.FuncLit:
					if isHotLit(pass.Fset, n, hotLines) {
						checkHotBody(pass, n.Body, "func literal")
						return false
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// hotDirectiveLines collects the line numbers of //paperlint:hot
// comments in f.
func hotDirectiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directivePrefix+"hot") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotDecl reports whether the declaration carries the hot directive:
// inside its doc comment group or on the line directly above the func
// keyword.
func isHotDecl(fset *token.FileSet, d *ast.FuncDecl, hot map[int]bool) bool {
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+"hot") {
				return true
			}
		}
	}
	return hot[fset.Position(d.Pos()).Line-1]
}

// isHotLit reports whether a function literal carries the hot
// directive on its own line or the line above.
func isHotLit(fset *token.FileSet, lit *ast.FuncLit, hot map[int]bool) bool {
	ln := fset.Position(lit.Pos()).Line
	return hot[ln] || hot[ln-1]
}

// checkHotBody walks one hot function body: allocation constructs in
// the body itself are reported in place, and every statically resolved
// call is traversed through the program call graph so allocations in
// (transitive) callees are reported at the call site that reaches
// them. name labels diagnostics.
func checkHotBody(pass *Pass, body *ast.BlockStmt, name string) {
	for _, f := range scanAllocs(pass.TypesInfo, pass.Pkg, body) {
		pass.Reportf(f.pos, "hot %s: %s", name, f.msg)
	}
	if pass.Prog == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee == nil || pass.Prog.DeclOf(callee) == nil || pass.Prog.IsHot(callee) {
			return true
		}
		for _, fn := range pass.Prog.Closure(callee, true) {
			for _, f := range pass.Prog.allocFindings(fn) {
				cpos := pass.Fset.Position(f.pos)
				if pass.Supp != nil && pass.Supp.Suppressed(pass.Analyzer.Name, cpos) {
					continue
				}
				pass.Reportf(call.Pos(), "hot %s: call to %s reaches an allocation: %s (in %s, %s:%d)",
					name, callee.Name(), f.msg, fn.Name(), filepath.Base(cpos.Filename), cpos.Line)
			}
		}
		return true
	})
}

// allocFinding is one allocation-inducing construct found by the
// scanner: its position and a message describing the construct (without
// the "hot <name>:" prefix the reporting layer adds).
type allocFinding struct {
	pos token.Pos
	msg string
}

// allocFindings scans (and caches) the allocation constructs of one
// module function's body. The cache holds unfiltered findings;
// suppression is applied by the consumer so directive usage is
// tracked per run.
func (p *Program) allocFindings(fn *types.Func) []allocFinding {
	if cached, ok := p.allocs[fn]; ok {
		return cached
	}
	var out []allocFinding
	if d := p.decls[fn]; d != nil && d.Body != nil {
		out = scanAllocs(p.Info, fn.Pkg(), d.Body)
	}
	p.allocs[fn] = out
	return out
}

// scanAllocs walks one function body collecting allocation-inducing
// constructs in source order.
func scanAllocs(info *types.Info, pkg *types.Package, body *ast.BlockStmt) []allocFinding {
	var out []allocFinding
	add := func(pos token.Pos, msg string) {
		out = append(out, allocFinding{pos: pos, msg: msg})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Arguments to panic are exempt: a panicking path is
			// terminal, never steady state, so formatting the panic
			// message may allocate freely.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			// Conversions to interface types box their operand.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if t := tv.Type; t != nil && types.IsInterface(t.Underlying()) && len(n.Args) == 1 {
					if at := info.TypeOf(n.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
						add(n.Pos(), fmt.Sprintf("conversion to interface type %s allocates", types.TypeString(t, types.RelativeTo(pkg))))
					}
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append":
						add(n.Pos(), "append may grow and reallocate; preallocate outside the hot path")
					case "make", "new":
						add(n.Pos(), fmt.Sprintf("%s allocates; hoist to construction or first-use guard (//paperlint:ignore hotalloc with justification)", b.Name()))
					}
					return true
				}
			}
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				add(n.Pos(), fmt.Sprintf("fmt.%s allocates (variadic boxing and formatting)", fn.Name()))
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				add(n.Pos(), "string concatenation allocates per evaluation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.Pos(), "string += allocates per evaluation")
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					add(n.Pos(), fmt.Sprintf("%s literal allocates", kindName(t)))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, n) {
				add(n.Pos(), "closure captures enclosing variables and allocates")
			}
			// Nested literal bodies are still within the hot region;
			// keep walking them.
		}
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// capturesOuter reports whether a function literal references variables
// declared outside itself (other than package-level ones): those become
// heap-allocated captures.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are static, not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
