package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc returns the analyzer enforcing zero steady-state allocations
// in annotated hot paths. A function (or function literal) marked with
// a //paperlint:hot comment — the trace decode loop, the TLB access
// path, the working-set step, the core simulate loop — must not contain
// allocation-inducing constructs:
//
//   - calls into fmt (formatting allocates for the variadic box and the
//     result string);
//   - string concatenation with + (builds a new string per evaluation);
//   - append, make, new;
//   - slice/map composite literals and &T{} (escaping composites);
//   - function literals that capture enclosing variables (the closure
//     and its captured cells are heap-allocated);
//   - explicit conversions to interface types (the boxed value
//     escapes).
//
// One-time warm-up allocations (growing a scratch buffer on first use)
// are legitimate; suppress them line by line with
// //paperlint:ignore hotalloc and a justification. The AllocsPerRun==0
// tests remain the runtime backstop; this analyzer catches regressions
// at lint time and names the construct.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocation-inducing constructs inside //paperlint:hot functions",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			hotLines := hotDirectiveLines(pass.Fset, f)
			if len(hotLines) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil && isHotDecl(pass.Fset, n, hotLines) {
						checkHotBody(pass, n.Body, n.Name.Name)
						return false // the body is fully checked; don't re-enter
					}
				case *ast.FuncLit:
					if isHotLit(pass.Fset, n, hotLines) {
						checkHotBody(pass, n.Body, "func literal")
						return false
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// hotDirectiveLines collects the line numbers of //paperlint:hot
// comments in f.
func hotDirectiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directivePrefix+"hot") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotDecl reports whether the declaration carries the hot directive:
// inside its doc comment group or on the line directly above the func
// keyword.
func isHotDecl(fset *token.FileSet, d *ast.FuncDecl, hot map[int]bool) bool {
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+"hot") {
				return true
			}
		}
	}
	return hot[fset.Position(d.Pos()).Line-1]
}

// isHotLit reports whether a function literal carries the hot
// directive on its own line or the line above.
func isHotLit(fset *token.FileSet, lit *ast.FuncLit, hot map[int]bool) bool {
	ln := fset.Position(lit.Pos()).Line
	return hot[ln] || hot[ln-1]
}

// checkHotBody walks one hot function body reporting allocation
// constructs. name labels diagnostics.
func checkHotBody(pass *Pass, body *ast.BlockStmt, name string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Conversions to interface types box their operand.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if t := tv.Type; t != nil && types.IsInterface(t.Underlying()) && len(n.Args) == 1 {
					if at := info.TypeOf(n.Args[0]); at != nil && !types.IsInterface(at.Underlying()) {
						pass.Reportf(n.Pos(), "hot %s: conversion to interface type %s allocates", name, types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append":
						pass.Reportf(n.Pos(), "hot %s: append may grow and reallocate; preallocate outside the hot path", name)
					case "make", "new":
						pass.Reportf(n.Pos(), "hot %s: %s allocates; hoist to construction or first-use guard (//paperlint:ignore hotalloc with justification)", name, b.Name())
					}
					return true
				}
			}
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "hot %s: fmt.%s allocates (variadic boxing and formatting)", name, fn.Name())
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "hot %s: string concatenation allocates per evaluation", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "hot %s: string += allocates per evaluation", name)
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "hot %s: %s literal allocates", name, kindName(t))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot %s: &composite literal escapes to the heap", name)
				}
			}
		case *ast.FuncLit:
			if capturesOuter(info, n) {
				pass.Reportf(n.Pos(), "hot %s: closure captures enclosing variables and allocates", name)
			}
			// Nested literal bodies are still within the hot region;
			// keep walking them.
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// capturesOuter reports whether a function literal references variables
// declared outside itself (other than package-level ones): those become
// heap-allocated captures.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are static, not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}
