package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// PowTwoTarget names a function whose page-size parameters must be
// powers of two.
type PowTwoTarget struct {
	// Func is the qualified name, package path dot function name, e.g.
	// "twopage/internal/policy.NewSingle".
	Func string
	// Args lists the zero-based argument indices to check.
	Args []int
	// Rest, when > 0, additionally checks every argument from that
	// index on (variadic page-size lists). Zero disables it.
	Rest int
}

// PowTwoGeometry names a configuration struct whose constant fields
// encode a TLB/cache geometry.
type PowTwoGeometry struct {
	// Type is the qualified struct type name, e.g.
	// "twopage/internal/tlb.Config".
	Type string
	// PowFields are fields that, when set to a nonzero constant, must
	// individually be powers of two.
	PowFields []string
	// TotalField/WaysField, when both named, require the quotient
	// total/ways (the set count) to be a power of two and total to
	// divide evenly — the tlb.Config invariant. A zero or absent ways
	// means fully associative (one set), which is always fine.
	TotalField, WaysField string
}

// PowTwoAscending names a constructor taking a variadic page-size
// hierarchy that must be strictly ascending powers of two — the
// addr.SizeClasses invariant, caught at the call site instead of as a
// runtime constructor error.
type PowTwoAscending struct {
	// Func is the qualified name, package path dot function name, e.g.
	// "twopage/internal/addr.NewSizeClasses".
	Func string
	// From is the zero-based index of the first hierarchy argument;
	// every argument from it on is part of the size-class list.
	From int
}

// PowTwoConfig parameterizes the powtwo analyzer so tests can point it
// at testdata-local packages.
type PowTwoConfig struct {
	Targets    []PowTwoTarget
	Geometries []PowTwoGeometry
	Ascending  []PowTwoAscending
	// Validators are function names whose call result is trusted to be
	// a power of two (runtime-validated helpers like addr.MustPow2).
	// Non-constant expressions at checked positions must pass through
	// one of them.
	Validators []string
}

// DefaultPowTwoConfig wires the analyzer to the repository's real
// constructors: page sizes entering the policy and working-set paths,
// and the TLB/cache geometry structs.
func DefaultPowTwoConfig() PowTwoConfig {
	return PowTwoConfig{
		Targets: []PowTwoTarget{
			{Func: "twopage/internal/policy.NewSingle", Args: []int{0}},
			{Func: "twopage/internal/core.MeasureStaticWSS", Rest: 3},
		},
		Geometries: []PowTwoGeometry{
			{Type: "twopage/internal/tlb.Config", TotalField: "Entries", WaysField: "Ways"},
			{Type: "twopage/internal/cache.Config", PowFields: []string{"Block"}},
		},
		Ascending: []PowTwoAscending{
			{Func: "twopage/internal/addr.NewSizeClasses"},
			{Func: "twopage/internal/addr.MustSizeClasses"},
		},
		Validators: []string{"MustPow2"},
	}
}

// PowTwo returns the analyzer enforcing the paper's standing assumption
// that pages are aligned and power-of-two sized (Section 1; the model's
// address arithmetic is pure shifts and masks and is wrong for any
// other size). Constants flowing into the configured constructors are
// checked outright; non-constant expressions must pass through a
// validation helper such as addr.MustPow2, which keeps the check at the
// construction boundary instead of deep in simulation loops.
func PowTwo(cfg PowTwoConfig) *Analyzer {
	targets := map[string]PowTwoTarget{}
	for _, t := range cfg.Targets {
		targets[t.Func] = t
	}
	geoms := map[string]PowTwoGeometry{}
	for _, g := range cfg.Geometries {
		geoms[g.Type] = g
	}
	ascending := map[string]PowTwoAscending{}
	for _, a := range cfg.Ascending {
		ascending[a.Func] = a
	}
	validators := map[string]bool{}
	for _, v := range cfg.Validators {
		validators[v] = true
	}
	a := &Analyzer{
		Name: "powtwo",
		Doc:  "flags page sizes and TLB geometries that are not aligned powers of two",
	}
	a.Run = func(pass *Pass) error {
		info := pass.TypesInfo
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkPowTwoCall(pass, n, targets, validators)
					checkAscendingCall(pass, n, ascending)
				case *ast.CompositeLit:
					if t := info.TypeOf(n); t != nil {
						if g, ok := geoms[qualifiedTypeName(t)]; ok {
							checkGeometry(pass, n, g)
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func checkPowTwoCall(pass *Pass, call *ast.CallExpr, targets map[string]PowTwoTarget, validators map[string]bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	t, ok := targets[fn.Pkg().Path()+"."+fn.Name()]
	if !ok {
		return
	}
	check := func(i int) {
		if i >= len(call.Args) {
			return
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			return // spread slice: contents are not statically visible
		}
		arg := call.Args[i]
		if v, isConst := constIntValue(pass.TypesInfo, arg); isConst {
			if v <= 0 || v&(v-1) != 0 {
				pass.Reportf(arg.Pos(), "argument %d of %s is %d, not a positive power of two (the paper's model requires aligned power-of-two pages)", i, fn.Name(), v)
			}
			return
		}
		if isValidatorCall(pass.TypesInfo, arg, validators) {
			return
		}
		pass.Reportf(arg.Pos(), "non-constant page size reaches %s unvalidated: wrap it in a power-of-two validator (e.g. addr.MustPow2)", fn.Name())
	}
	for _, i := range t.Args {
		check(i)
	}
	if t.Rest > 0 {
		for i := t.Rest; i < len(call.Args); i++ {
			check(i)
		}
	}
}

// checkAscendingCall enforces the size-class-hierarchy invariant on a
// constructor call: every constant argument of the list must be a
// positive power of two, and consecutive constant arguments must be
// strictly ascending. A non-constant argument is left to the
// constructor's runtime validation and breaks the ascent chain (the
// analyzer cannot compare across it).
func checkAscendingCall(pass *Pass, call *ast.CallExpr, ascending map[string]PowTwoAscending) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	a, ok := ascending[fn.Pkg().Path()+"."+fn.Name()]
	if !ok {
		return
	}
	prev := int64(-1)
	for i := a.From; i < len(call.Args); i++ {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			return // spread slice: contents are not statically visible
		}
		arg := call.Args[i]
		v, isConst := constIntValue(pass.TypesInfo, arg)
		if !isConst {
			prev = -1
			continue
		}
		if v <= 0 || v&(v-1) != 0 {
			pass.Reportf(arg.Pos(), "size class %d of %s is %d, not a positive power of two", i-a.From, fn.Name(), v)
			prev = -1
			continue
		}
		if prev >= 0 && v <= prev {
			pass.Reportf(arg.Pos(), "size classes of %s are not strictly ascending: %d after %d", fn.Name(), v, prev)
		}
		prev = v
	}
}

func checkGeometry(pass *Pass, lit *ast.CompositeLit, g PowTwoGeometry) {
	fields := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return // positional geometry literals are not used in this repo
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = kv.Value
		}
	}
	for _, name := range g.PowFields {
		expr, ok := fields[name]
		if !ok {
			continue
		}
		if v, isConst := constIntValue(pass.TypesInfo, expr); isConst && v != 0 && (v < 0 || v&(v-1) != 0) {
			pass.Reportf(expr.Pos(), "%s.%s is %d, not a power of two", qualifiedTypeName(pass.TypesInfo.TypeOf(lit)), name, v)
		}
	}
	if g.TotalField == "" || g.WaysField == "" {
		return
	}
	totalExpr, ok := fields[g.TotalField]
	if !ok {
		return
	}
	total, ok := constIntValue(pass.TypesInfo, totalExpr)
	if !ok || total <= 0 {
		return
	}
	ways := total // absent or zero ways means fully associative
	if waysExpr, okW := fields[g.WaysField]; okW {
		if w, okC := constIntValue(pass.TypesInfo, waysExpr); okC && w != 0 {
			ways = w
		} else if !okC {
			return // runtime-determined ways: the constructor validates
		}
	}
	if ways < 0 || total%ways != 0 {
		pass.Reportf(totalExpr.Pos(), "%d entries do not divide into %d ways", total, ways)
		return
	}
	if sets := total / ways; sets&(sets-1) != 0 {
		pass.Reportf(totalExpr.Pos(), "geometry yields %d sets, not a power of two (set indexing is bit extraction)", sets)
	}
}

// constIntValue extracts an integer constant from a typed expression.
func constIntValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return v, ok
}

// isValidatorCall reports whether e is (possibly parenthesized) a call
// to one of the trusted power-of-two validators, by name.
func isValidatorCall(info *types.Info, e ast.Expr, validators map[string]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn := calleeFunc(info, call); fn != nil {
		return validators[fn.Name()]
	}
	return false
}

// qualifiedTypeName renders pkgpath.Name for named types, or the type
// string for everything else.
func qualifiedTypeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}
