// Package load type-checks the module's packages for paperlint. It
// discovers packages with `go list -json` (so build constraints and
// file lists always match the real build) and resolves standard-library
// imports through the source importer, which needs no export data and
// works offline. Only the standard library is used.
package load

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	// Deps holds the transitive dependency import paths as reported by
	// go list; the driver uses it for reachability scoping.
	Deps map[string]bool
}

// Result carries every loaded module package plus the shared file set
// and type information the analyzers consume.
type Result struct {
	Fset *token.FileSet
	Info *types.Info
	Pkgs []*Package // in go list order (lexical by import path)
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Deps       []string
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns in the module rooted at
// dir and type-checks them, function bodies included.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := runGoList(dir, patterns)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset: token.NewFileSet(),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		listed: map[string]*listPkg{},
		loaded: map[string]*Package{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, p := range listed {
		l.listed[p.ImportPath] = p
	}
	res := &Result{Fset: l.fset, Info: l.info}
	for _, p := range listed {
		pkg, err := l.load(p.ImportPath)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

func runGoList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Deps,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader type-checks module packages on demand, resolving module-local
// imports recursively and everything else through the source importer.
type loader struct {
	fset   *token.FileSet
	info   *types.Info
	std    types.Importer
	listed map[string]*listPkg
	loaded map[string]*Package
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	lp := l.listed[path]
	if lp == nil {
		return nil, fmt.Errorf("package %s not in go list output", path)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	deps := make(map[string]bool, len(lp.Deps))
	for _, d := range lp.Deps {
		deps[d] = true
	}
	pkg := &Package{
		ImportPath: path,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Deps:       deps,
	}
	l.loaded[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module packages load recursively,
// everything else falls through to the standard library's source
// importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.listed[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
