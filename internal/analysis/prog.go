package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program aggregates whole-program facts across every loaded package so
// analyzers can reason interprocedurally: a static call graph over the
// module's function declarations, a struct-field-use layer (which
// fields does each function read or write), the //paperlint:hot
// annotation set, and the index of objects carrying a standard
// "Deprecated:" doc marker.
//
// The facts are deliberately syntactic and conservative:
//
//   - the call graph covers direct calls only — calls through
//     interfaces, function values and built-ins resolve to no edge (the
//     concrete implementations behind the simulator's interfaces carry
//     their own annotations and are analyzed in their own right);
//   - field use means any reference to the field object, read or
//     write, including composite-literal keys — the exhaustiveness
//     analyzers ask "does this code mention the field at all", which is
//     exactly the invariant a newly added field tends to break.
//
// Build one Program per lint run: NewProgram, then AddPackage for every
// package in load order. Facts are keyed by types objects, so packages
// may be added in any order as long as they were type-checked through
// one shared types.Info (the loader guarantees this).
type Program struct {
	Fset *token.FileSet
	Info *types.Info

	pkgs       map[*types.Package]bool
	decls      map[*types.Func]*ast.FuncDecl
	callees    map[*types.Func][]*types.Func
	fields     map[*types.Func]map[*types.Var]bool
	hot        map[*types.Func]bool
	deprecated map[types.Object]string
	allocs     map[*types.Func][]allocFinding // lazy hotalloc scan cache
}

// NewProgram returns an empty program over the shared file set and type
// information.
func NewProgram(fset *token.FileSet, info *types.Info) *Program {
	return &Program{
		Fset:       fset,
		Info:       info,
		pkgs:       map[*types.Package]bool{},
		decls:      map[*types.Func]*ast.FuncDecl{},
		callees:    map[*types.Func][]*types.Func{},
		fields:     map[*types.Func]map[*types.Var]bool{},
		hot:        map[*types.Func]bool{},
		deprecated: map[types.Object]string{},
		allocs:     map[*types.Func][]allocFinding{},
	}
}

// AddPackage indexes one type-checked package: function declarations,
// call edges, field uses, hot annotations and deprecation markers.
func (p *Program) AddPackage(pkg *types.Package, files []*ast.File) {
	p.pkgs[pkg] = true
	for _, f := range files {
		hotLines := hotDirectiveLines(p.Fset, f)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := p.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				p.decls[fn] = d
				if isHotDecl(p.Fset, d, hotLines) {
					p.hot[fn] = true
				}
				if note, ok := deprecationNote(d.Doc); ok {
					p.deprecated[fn] = note
				}
				if d.Body != nil {
					p.indexBody(fn, d.Body)
				}
			case *ast.GenDecl:
				p.indexGenDecl(d)
			}
		}
	}
}

// indexBody records the call edges and field references of one function
// body, in source order (the order keeps closure traversal — and with
// it diagnostic order — deterministic).
func (p *Program) indexBody(fn *types.Func, body *ast.BlockStmt) {
	seen := map[*types.Func]bool{}
	uses := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := calleeFunc(p.Info, n); callee != nil && !seen[callee] {
				seen[callee] = true
				p.callees[fn] = append(p.callees[fn], callee)
			}
		case *ast.Ident:
			if v, ok := p.Info.Uses[n].(*types.Var); ok && v.IsField() {
				uses[v] = true
			}
		}
		return true
	})
	if len(uses) > 0 {
		p.fields[fn] = uses
	}
}

// indexGenDecl records deprecation markers on types, consts, vars and
// struct fields. Following the Go convention, a declaration is
// deprecated when its doc comment contains a paragraph line starting
// "Deprecated:"; a single-spec declaration inherits the GenDecl's doc.
func (p *Program) indexGenDecl(d *ast.GenDecl) {
	declDoc := d.Doc
	if len(d.Specs) != 1 {
		declDoc = nil
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if note, ok := deprecationNote(s.Doc, declDoc); ok {
				if obj := p.Info.Defs[s.Name]; obj != nil {
					p.deprecated[obj] = note
				}
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				p.indexStructFields(st)
			}
		case *ast.ValueSpec:
			if note, ok := deprecationNote(s.Doc, declDoc); ok {
				for _, name := range s.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						p.deprecated[obj] = note
					}
				}
			}
		}
	}
}

// indexStructFields records deprecation markers on individual struct
// fields (doc comment above the field or line comment after it).
func (p *Program) indexStructFields(st *ast.StructType) {
	for _, field := range st.Fields.List {
		note, ok := deprecationNote(field.Doc, field.Comment)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				p.deprecated[obj] = note
			}
		}
	}
}

// deprecationNote scans comment groups for the conventional
// "Deprecated:" marker, returning the remainder of its first line.
func deprecationNote(groups ...*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, line := range strings.Split(g.Text(), "\n") {
			if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// HasPackage reports whether pkg was added to the program (i.e. is a
// module package whose source the analyzers can see).
func (p *Program) HasPackage(pkg *types.Package) bool { return p.pkgs[pkg] }

// DeclOf returns the module declaration of fn, or nil for functions
// outside the program (standard library, function values).
func (p *Program) DeclOf(fn *types.Func) *ast.FuncDecl { return p.decls[fn] }

// IsHot reports whether fn carries a //paperlint:hot annotation.
func (p *Program) IsHot(fn *types.Func) bool { return p.hot[fn] }

// Deprecated returns the "Deprecated:" note attached to obj's
// declaration, if any.
func (p *Program) Deprecated(obj types.Object) (string, bool) {
	note, ok := p.deprecated[obj]
	return note, ok
}

// Closure returns fn plus every module function statically reachable
// from it, in deterministic breadth-first order. With skipHot set,
// traversal does not enter //paperlint:hot callees: those are analyzed
// as hot roots in their own right, so a caller's closure would only
// duplicate their diagnostics.
func (p *Program) Closure(fn *types.Func, skipHot bool) []*types.Func {
	visited := map[*types.Func]bool{fn: true}
	order := []*types.Func{fn}
	for i := 0; i < len(order); i++ {
		for _, callee := range p.callees[order[i]] {
			if visited[callee] || p.decls[callee] == nil {
				continue
			}
			if skipHot && p.hot[callee] {
				continue
			}
			visited[callee] = true
			order = append(order, callee)
		}
	}
	return order
}

// FieldUsed reports whether any function in fns references field (read
// or write, including composite-literal keys).
func (p *Program) FieldUsed(fns []*types.Func, field *types.Var) bool {
	for _, fn := range fns {
		if p.fields[fn][field] {
			return true
		}
	}
	return false
}
