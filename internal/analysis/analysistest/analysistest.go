// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want comments — the stdlib-only
// counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// Test packages live in testdata/src/<importpath>/ (the GOPATH-style
// layout the x/tools harness uses). A line expecting diagnostics
// carries one comment with one quoted regular expression per expected
// diagnostic:
//
//	for k := range m { // want `range over map`
//
// Imports between testdata packages resolve within testdata/src;
// standard-library imports are type-checked from source, so the
// harness needs no compiled export data and works offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"twopage/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkgPath>, applies the analyzers, and reports
// any mismatch between produced diagnostics and // want expectations as
// test errors.
func Run(t *testing.T, testdata, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	l := newLoader(testdata)
	pkg, files, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	// Interprocedural facts span every package the target pulled in, so
	// a deprecation marker or hot annotation in an imported fixture
	// package is visible; suppressions likewise, so a callee-local
	// ignore in an imported package silences hot callers here.
	prog := analysis.NewProgram(l.fset, l.info)
	supp := analysis.NewSuppressions(l.fset)
	paths := make([]string, 0, len(l.loaded))
	for path := range l.loaded {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p := l.loaded[path]
		prog.AddPackage(p.pkg, p.files)
		supp.AddFiles(p.files...)
	}
	diags, err := analysis.RunPkg(prog, supp, pkg, files, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPath, err)
	}
	wants, err := parseWants(l.fset, files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgPath, err)
	}
	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", posString(d.Pos), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(p.Filename), p.Line, p.Column)
}

// claimWant marks the first unmatched want on the diagnostic's line
// whose pattern matches, reporting whether one was found.
func claimWant(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.rx.MatchString(d.Message) || w.rx.MatchString(d.Analyzer+": "+d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRx matches the comment payload: `// want "rx"` or backquoted
// forms, possibly several per comment.
var wantArgRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantArgRx.FindAllString(text[i+len("want "):], -1) {
					var raw string
					if m[0] == '`' {
						raw = m[1 : len(m)-1]
					} else {
						var err error
						raw, err = strconv.Unquote(m)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, m, err)
						}
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: raw})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out, nil
}

// loadedPkg is one type-checked fixture package with its syntax, kept
// so whole-program facts can be built over everything the target
// imports.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
}

// loader type-checks testdata packages, resolving imports first within
// testdata/src and then from the standard library's source.
type loader struct {
	testdata string
	fset     *token.FileSet
	info     *types.Info
	std      types.Importer
	loaded   map[string]*loadedPkg
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		testdata: testdata,
		fset:     fset,
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		std:    importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*loadedPkg{},
	}
}

func (l *loader) load(pkgPath string) (*types.Package, []*ast.File, error) {
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(pkgPath, l.fset, files, l.info)
	if err != nil {
		return nil, nil, err
	}
	l.loaded[pkgPath] = &loadedPkg{pkg: pkg, files: files}
	return pkg, files, nil
}

// Import implements types.Importer over testdata-local packages first,
// standard library second.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p.pkg, nil
	}
	local := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(local); err == nil && st.IsDir() {
		pkg, _, err := l.load(path)
		return pkg, err
	}
	return l.std.Import(path)
}
