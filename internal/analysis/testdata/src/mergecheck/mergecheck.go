package mergecheck

// ShardStats mirrors the repo's stats shapes: flow counters that a
// sharded merge must fold, one array counter, one annotated gauge, and
// one non-counter field the analyzer must not demand.
type ShardStats struct {
	Refs   uint64
	Hits   uint64
	Misses uint64
	ByWay  [4]uint64
	//paperlint:gauge current mapping state, carried from the last shard
	Mapped int
	Name   string
}

func (s *ShardStats) Merge(o ShardStats) { // want `ShardStats.Merge does not reference counter field Misses`
	s.Refs += o.Refs
	s.Hits += o.Hits
	for k := range s.ByWay {
		s.ByWay[k] += o.ByWay[k]
	}
}

func (s *ShardStats) Sub(o ShardStats) { // want `ShardStats.Sub does not reference counter field ByWay`
	s.Refs -= o.Refs
	s.Hits -= o.Hits
	s.Misses -= o.Misses
}

// HelperStats folds its counters through a helper; the interprocedural
// closure must see the references and stay quiet.
type HelperStats struct {
	Refs uint64
	Hits uint64
}

func (s *HelperStats) Merge(o HelperStats) {
	s.fold(o)
}

func (s *HelperStats) fold(o HelperStats) {
	s.Refs += o.Refs
	s.Hits += o.Hits
}

// NotShaped has an Add that is not merge-shaped (wrong parameter type),
// so no exhaustiveness is demanded of it.
type NotShaped struct {
	Count uint64
	Other uint64
}

func (s *NotShaped) Add(delta uint64) {
	s.Count += delta
}
