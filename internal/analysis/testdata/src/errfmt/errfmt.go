package errfmt

import (
	"errors"
	"fmt"
)

type file struct{}

func (f *file) Close() error { return nil }

var errBase = errors.New("base")

func wrapNoVerb(err error) error {
	return fmt.Errorf("open trace: %v", err) // want `without %w`
}

func wrapGood(err error) error {
	return fmt.Errorf("open trace: %w", err)
}

func wrapNoErrArg(name string) error {
	return fmt.Errorf("open %s: size mismatch", name)
}

func dropped(f *file) {
	f.Close() // want `silently dropped`
}

func discarded(f *file) {
	_ = f.Close()
}

func deferred(f *file) {
	defer f.Close()
}

func handled(f *file) error {
	if err := f.Close(); err != nil {
		return fmt.Errorf("close trace: %w", err)
	}
	return nil
}

func suppressedDrop(f *file) {
	f.Close() //paperlint:ignore errfmt best-effort close on an error path
}
