package hotalloc

// htab-style open-addressing kernel idioms: a map-free linear-probe
// loop over flat slot slices and dense arena indexing are exactly what
// the hot paths converted to, and the analyzer must stay quiet on them
// while still flagging growth or boxing smuggled into the probe loop.

type probeSlot struct {
	key uint64
	val uint64
}

type probeTable struct {
	slots []probeSlot
	mask  uint64
	n     int
}

type arenaEntry struct {
	valid bool
	data  [8]uint64
}

//paperlint:hot
func (t *probeTable) get(k uint64) (uint64, bool) {
	i := (k * 0x9E3779B97F4A7C15) & t.mask
	for {
		s := t.slots[i]
		if s.key == k {
			return s.val, true
		}
		if s.key == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

//paperlint:hot
func (t *probeTable) putPreSized(k, v uint64) {
	i := (k * 0x9E3779B97F4A7C15) & t.mask
	for {
		s := &t.slots[i]
		if s.key == k || s.key == 0 {
			s.key = k
			s.val = v
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}

// Arena indexing through a flat index table: lookups resolve to value
// slots in a dense slice, never through per-entry pointers. No
// allocation constructs — no diagnostics.
//
//paperlint:hot
func arenaLookup(t *probeTable, arena []arenaEntry, k uint64) *arenaEntry {
	i, ok := t.get(k)
	if !ok {
		return nil
	}
	e := &arena[i]
	if !e.valid {
		return nil
	}
	return e
}

// Growing inside the probe loop is the regression the analyzer must
// keep catching: the whole point of the kernel is that growth happens
// at construction, not per reference.
//
//paperlint:hot
func probeGrowBad(t *probeTable, k, v uint64) {
	if t.n*4 >= len(t.slots)*3 {
		t.slots = append(t.slots, probeSlot{})     // want `append may grow`
		grown := make([]probeSlot, 2*len(t.slots)) // want `make allocates`
		copy(grown, t.slots)
		t.slots = grown
	}
	t.putPreSized(k, v)
}

// Boxing a slot into an interface for diagnostics belongs off the hot
// path.
//
//paperlint:hot
func probeBoxBad(t *probeTable, k uint64) any {
	v, _ := t.get(k)
	return any(v) // want `conversion to interface type any allocates`
}
