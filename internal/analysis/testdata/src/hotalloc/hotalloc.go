package hotalloc

import "fmt"

type point struct{ x, y int }

//paperlint:hot
func hotBad(xs []int, a, b string) string {
	s := make([]int, 8)         // want `make allocates`
	xs = append(xs, 1)          // want `append may grow`
	m := map[int]int{}          // want `map literal allocates`
	sl := []int{1, 2}           // want `slice literal allocates`
	p := &point{}               // want `composite literal escapes`
	msg := fmt.Sprintf("%d", 1) // want `fmt.Sprintf allocates`
	cat := a + b                // want `string concatenation allocates`
	cat += a                    // want `string \+= allocates`
	var boxed any = any(s[0])   // want `conversion to interface type any allocates`
	n := 0
	f := func() { n++ } // want `closure captures enclosing variables`
	f()
	_, _, _, _, _, _, _ = m, sl, p, msg, cat, boxed, xs
	return cat
}

// coldAlloc is identical but unannotated: nothing is reported.
func coldAlloc(xs []int) []int {
	s := make([]int, 8)
	xs = append(xs, s...)
	return xs
}

func driver() {
	//paperlint:hot
	step := func(buf []byte) {
		_ = make([]byte, 1) // want `make allocates`
		_ = buf
	}
	step(nil)
}

//paperlint:hot
func hotWarmup(buf []byte) []byte {
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64) //paperlint:ignore hotalloc one-time warm-up growth
	}
	return buf
}
