package hotalloc

import "fmt"

// Interprocedural cases: allocations hidden behind static calls must be
// reported at the call site that drags them into the hot path.

func fill(dst []uint64, n int) []uint64 {
	for i := 0; i < n; i++ {
		dst = append(dst, uint64(i))
	}
	return dst
}

//paperlint:hot
func hotCaller(dst []uint64) []uint64 {
	return fill(dst, 8) // want `hot hotCaller: call to fill reaches an allocation: append may grow`
}

// A chain two calls deep: the finding names the innermost function but
// is anchored at the hot call site.

type node struct{ next *node }

func viaA() *node { return viaB() }

func viaB() *node { return &node{} }

//paperlint:hot
func hotDeep() *node {
	return viaA() // want `hot hotDeep: call to viaA reaches an allocation: &composite literal escapes`
}

// Hot callees are roots of their own: the leaf reports its construct in
// place and the caller's call site stays quiet.

//paperlint:hot
func hotLeaf() []int {
	return make([]int, 8) // want `hot hotLeaf: make allocates`
}

//paperlint:hot
func hotRoot() []int {
	return hotLeaf()
}

// A justified ignore on the construct's own line silences every hot
// caller that reaches it.

func growScratch(buf []byte) []byte {
	return append(buf, 0) //paperlint:ignore hotalloc amortized scratch growth, pinned by the fixture's alloc tests
}

//paperlint:hot
func hotSuppressed(buf []byte) []byte {
	return growScratch(buf)
}

// Arguments to panic are exempt, directly and through calls: the
// panicking path is terminal, not steady state.

func guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
}

//paperlint:hot
func hotGuarded(n int) int {
	guard(n)
	if n > 1<<20 {
		panic(fmt.Sprintf("huge n %d", n))
	}
	return n * 2
}
