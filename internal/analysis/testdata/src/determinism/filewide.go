//paperlint:ignore determinism timing in this file is masked before rendering
package determinism

import "time"

func maskedClock() int64 {
	return time.Now().Unix()
}
