package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func rangesMap(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m`
		total += v
	}
	return total
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // exempt: canonical key collection before sorting
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func clock() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func justified(m map[uint64]uint64) uint64 {
	var sum uint64
	//paperlint:ignore determinism order-independent uint64 sum
	for _, v := range m {
		sum += v
	}
	return sum
}
