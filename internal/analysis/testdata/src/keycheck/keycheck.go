package keycheck

import "strconv"

// Config is a flat memo-key case: one covered knob, one omitted knob,
// one hook the analyzer must exempt (func fields cannot be keyed; the
// engine rejects non-nil hooks before memoizing).
type Config struct {
	Entries int
	Ways    int
	Deny    func() bool
}

func (c Config) Key() (string, error) { // want `Config.Key omits field Config.Ways from the key`
	return "cfg:" + strconv.Itoa(c.Entries), nil
}

// Inner/Outer exercise nested coverage: the outer key is accountable
// for the nested struct's fields too.
type Inner struct {
	X int
	Y int
}

type Outer struct {
	Name string
	In   Inner
}

func (o Outer) key() string { // want `Outer.key omits field Inner.Y from the key`
	return o.Name + ":" + strconv.Itoa(o.In.X)
}

// Delegating covers the nested struct by calling its key helper; the
// interprocedural closure must see the references and stay quiet.
type Delegating struct {
	Name string
	In   Inner
}

func (d Delegating) key() string {
	return d.Name + ":" + d.In.frag()
}

func (i Inner) frag() string {
	return strconv.Itoa(i.X) + "/" + strconv.Itoa(i.Y)
}

// NotAKey has key-ish names with the wrong shapes (parameters, wrong
// results); no exhaustiveness is demanded of them.
type NotAKey struct {
	A int
	B int
}

func (n NotAKey) Key(salt string) (string, error) {
	return salt, nil
}

func (n NotAKey) key() (string, error) {
	return "", nil
}
