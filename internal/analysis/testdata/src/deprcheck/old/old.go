// Package old defines the deprecated shims the deprcheck fixture
// consumes from outside.
package old

// SmallShift is the legacy shift knob.
//
// Deprecated: use Shifts.
const SmallShift = 12

// Pair is the legacy two-size config.
//
// Deprecated: use the N-size form.
type Pair struct {
	// Small is the legacy small shift.
	//
	// Deprecated: use Shifts.
	Small uint
	// Large is current API despite its sibling; only marked fields count.
	Large uint
}

// Shifts is the current replacement; using it is fine anywhere.
var Shifts = []uint{12, 15}

// Legacy returns the legacy pair.
//
// Deprecated: use Current.
func Legacy() Pair {
	// Same-package use of deprecated names is allowed: the defining
	// package keeps normalizing them.
	return Pair{Small: SmallShift}
}

// Current returns the current shifts.
func Current() []uint { return Shifts }
