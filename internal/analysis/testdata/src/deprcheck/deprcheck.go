package deprcheck

import "deprcheck/old"

func uses() []uint {
	p := old.Legacy()     // want `use of deprecated function old.Legacy \(Deprecated: use Current.\)`
	_ = p.Small           // want `use of deprecated field old.Small \(Deprecated: use Shifts.\)`
	_ = p.Large           // current field: no finding
	_ = old.SmallShift    // want `use of deprecated constant old.SmallShift \(Deprecated: use Shifts.\)`
	var q old.Pair        // want `use of deprecated type old.Pair \(Deprecated: use the N-size form.\)`
	_ = q
	return old.Current()
}
