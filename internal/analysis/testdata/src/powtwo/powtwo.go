package powtwo

import "powtwo/fake"

func construct(n int) {
	fake.NewSingle(4096)
	fake.NewSingle(3000)             // want `not a positive power of two`
	fake.NewSingle(n)                // want `non-constant page size`
	fake.NewSingle(fake.MustPow2(n)) // validated at runtime: accepted
	fake.Measure("wss", 4096, 8192)
	fake.Measure("wss", 4096, 12345) // want `not a positive power of two`
	sizes := []int{4096}
	fake.Measure("wss", sizes...) // spread slice: contents not statically visible
}

func geometry() {
	_ = fake.Config{Entries: 64, Ways: 4, Block: 64}
	_ = fake.Config{Entries: 48, Ways: 3}            // 16 sets: fine
	_ = fake.Config{Entries: 64, Ways: 3}            // want `do not divide`
	_ = fake.Config{Entries: 96, Ways: 4}            // want `24 sets, not a power of two`
	_ = fake.Config{Entries: 64, Ways: 4, Block: 48} // want `Block is 48, not a power of two`
	_ = fake.Config{Entries: 64}                     // fully associative: one set
	_ = fake.Config{Entries: 96, Ways: 4}            //paperlint:ignore powtwo deliberately odd stress geometry
}

func hierarchy(n int) {
	fake.NewSizeClasses(4096, 32768, 262144)
	fake.NewSizeClasses(4096, 12345)        // want `not a positive power of two`
	fake.NewSizeClasses(32768, 4096)        // want `not strictly ascending: 4096 after 32768`
	fake.NewSizeClasses(4096, 4096)         // want `not strictly ascending`
	fake.NewSizeClasses(4096, n, 262144)    // runtime size breaks the chain: constructor validates
	fake.NewSizeClasses(4096, 3000, 262144) // want `size class 1 of NewSizeClasses is 3000`
	sizes := []int{32768, 4096}
	fake.NewSizeClasses(sizes...) // spread slice: contents not statically visible
}
