// Package fake mirrors the constructor shapes the powtwo analyzer
// targets in the real repository, so the analyzer's argument and
// geometry rules can be exercised hermetically.
package fake

type PageSize int

func NewSingle(size int) PageSize { return PageSize(size) }

func Measure(name string, sizes ...int) int { return len(sizes) }

type Config struct {
	Entries int
	Ways    int
	Block   int
}

func MustPow2(v int) int { return v }

func NewSizeClasses(sizes ...int) int { return len(sizes) }
