package ctxcheck

import "context"

type reader struct{}

func (r *reader) Read() (int, bool) { return 0, false }

func drainNoPoll(ctx context.Context, r *reader) {
	for { // want `without polling ctx`
		if _, ok := r.Read(); !ok {
			return
		}
	}
}

func drainPoll(ctx context.Context, r *reader) {
	n := 0
	for {
		if n%8192 == 0 && ctx.Err() != nil {
			return
		}
		if _, ok := r.Read(); !ok {
			return
		}
		n++
	}
}

// drainNoCtx takes no context, so there is nothing to poll.
func drainNoCtx(r *reader) {
	for {
		if _, ok := r.Read(); !ok {
			return
		}
	}
}

// batchRange loops over a decoded batch: bounded, exempt.
func batchRange(ctx context.Context, batch []int, r *reader) {
	for range batch {
		if _, ok := r.Read(); !ok {
			return
		}
	}
}

// nestedLit's literal has no context parameter of its own; function
// literals are checked against their own signature, not the enclosing
// one, so the loop is not flagged.
func nestedLit(ctx context.Context, r *reader) {
	helper := func(r *reader) {
		for {
			if _, ok := r.Read(); !ok {
				return
			}
		}
	}
	helper(r)
}

func drainSuppressed(ctx context.Context, r *reader) {
	//paperlint:ignore ctxcheck stream is at most one batch long here
	for {
		if _, ok := r.Read(); !ok {
			return
		}
	}
}
