package analysis

import (
	"go/ast"
	"go/types"
)

// KeyCheck returns the analyzer pinning the memo-key exhaustiveness
// invariant: any method shaped like a memoization-key builder —
// exported `Key() (string, error)` or unexported `key() string` on a
// struct receiver — must reference every field of its config struct,
// and of every module-local config struct nested in it, somewhere in
// the method or its static callees.
//
// The experiment engine deduplicates simulation work by unit key
// (engine.Unit.Key, built from tlb.Config.Key and the policy-spec key
// fragments). A config field that never reaches the key is a cache
// collision waiting to happen: two units differing only in that field
// memoize to the same entry and one silently returns the other's
// result. That failure mode is invisible at run time — the wrong
// numbers render confidently — so the invariant must hold structurally:
// add a knob to tlb.Config, engine.PolicySpec, policy.TwoSizeConfig or
// policy.LadderConfig and the lint run fails until the key mentions it.
//
// "Referenced" means any mention of the field object anywhere in the
// key method's static call closure. Normalization counts: a deprecated
// field that the key's Normalized() call folds into a canonical field
// before formatting does affect the key bytes and passes the check for
// exactly that reason. Two shapes are exempt:
//
//   - function-typed fields (hooks cannot be part of a key; the engine
//     rejects non-nil hooks before memoizing, e.g. DenyPromotion);
//   - unexported fields of structs defined outside the key method's
//     package (not addressable from the key builder; their owning
//     package's constructors validate them).
//
// Nested coverage follows field types through pointers, slices and
// arrays into named struct types defined in this module, so
// engine.Unit.Key is accountable for tlb.Config's fields even though
// it delegates to tlb.Config.Key — delegation satisfies the check,
// deleting the delegation breaks it.
func KeyCheck() *Analyzer {
	a := &Analyzer{
		Name: "keycheck",
		Doc:  "memo-key methods must reference every field of their config struct (and nested module config structs)",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Recv == nil || d.Body == nil {
					continue
				}
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil || !isKeyShaped(fn) {
					continue
				}
				named, _ := receiverStruct(fn)
				if named == nil {
					continue
				}
				closure := pass.Prog.Closure(fn, false)
				for _, s := range keyRelevantStructs(pass.Prog, named) {
					st := s.Underlying().(*types.Struct)
					for i := 0; i < st.NumFields(); i++ {
						f := st.Field(i)
						if isFuncType(f.Type()) {
							continue // hooks cannot be keyed; the engine rejects non-nil ones
						}
						if !f.Exported() && s.Obj().Pkg() != pass.Pkg {
							continue
						}
						if !pass.Prog.FieldUsed(closure, f) {
							pass.Reportf(d.Name.Pos(),
								"%s.%s omits field %s.%s from the key: two configs differing only in it would collide in the engine memo cache",
								named.Obj().Name(), d.Name.Name, s.Obj().Name(), f.Name())
						}
					}
				}
			}
		}
		return nil
	}
	return a
}

// isKeyShaped reports whether fn is a memoization-key builder:
// `Key() (string, error)` or `key() string`, no parameters.
func isKeyShaped(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 {
		return false
	}
	res := sig.Results()
	switch fn.Name() {
	case "Key":
		return res.Len() == 2 && isString(res.At(0).Type()) && isErrorType(res.At(1).Type())
	case "key":
		return res.Len() == 1 && isString(res.At(0).Type())
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// keyRelevantStructs returns the receiver struct plus every named
// struct type from the program reachable through its fields (following
// pointers, slices and arrays), in deterministic breadth-first field
// order. These are the config layers whose fields must all reach the
// key.
func keyRelevantStructs(prog *Program, root *types.Named) []*types.Named {
	visited := map[*types.Named]bool{root: true}
	order := []*types.Named{root}
	for i := 0; i < len(order); i++ {
		st, ok := order[i].Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < st.NumFields(); j++ {
			named, ok := elemNamed(st.Field(j).Type())
			if !ok || visited[named] {
				continue
			}
			if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
				continue
			}
			if named.Obj().Pkg() == nil || !prog.HasPackage(named.Obj().Pkg()) {
				continue
			}
			visited[named] = true
			order = append(order, named)
		}
	}
	return order
}

// elemNamed strips pointers, slices and arrays and reports the named
// type underneath, if any.
func elemNamed(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}
