// Package twopage is a from-scratch Go reproduction of "Tradeoffs in
// Supporting Two Page Sizes" (Madhusudhan Talluri, Shing Kong, Mark D.
// Hill, David A. Patterson; 19th International Symposium on Computer
// Architecture, 1992).
//
// The paper asks whether TLBs should support a single larger page size
// or two page sizes (4KB + 32KB), and answers with trace-driven
// simulation: working-set costs (Section 4) and TLB CPI contributions
// (Section 5) across a dozen SPARC traces, plus the design space of
// set-associative TLB indexing for two page sizes (Section 2) and a
// dynamic page-size assignment policy (Section 3.4).
//
// This module rebuilds the whole apparatus: TLB models for every
// organization the paper discusses, the promotion policy, exact
// working-set simulators, an all-associativity (tycho-style) simulator,
// OS substrates (two-size page table, buddy allocator), synthetic
// workload models standing in for the original traces, and a harness
// that regenerates every table and figure. See README.md for a tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for measured
// results against the paper's.
package twopage
