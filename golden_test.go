package twopage_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"twopage/internal/experiments"
)

// Regenerate the golden corpus with:
//
//	go test -run TestGolden -update   (or: make golden-update)
var update = flag.Bool("update", false, "rewrite testdata/golden from current output")

// goldenPath maps an experiment ID to its golden file. IDs like
// "table3.1" are already safe filenames.
func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// renderGolden runs one experiment at the golden scale and returns its
// rendered table with the single time-dependent cell masked.
func renderGolden(t *testing.T, id string) []byte {
	t.Helper()
	var sb bytes.Buffer
	r := experiments.NewRunner(
		experiments.WithScale(0.01),
		experiments.WithWorkloads("li", "worm"),
		experiments.WithOut(&sb),
	)
	if err := r.Run(context.Background(), id); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return []byte(maskTimings.ReplaceAllString(sb.String(), "T"))
}

// TestGolden pins the rendered output of every registered experiment,
// byte for byte, against testdata/golden. Any drift — a changed
// number, a reordered row, even a respaced column — fails the suite
// until the change is acknowledged with -update.
func TestGolden(t *testing.T) {
	all := experiments.All()
	if len(all) == 0 {
		t.Fatal("no experiments registered")
	}
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			got := renderGolden(t, e.ID)
			if len(got) == 0 {
				t.Fatalf("%s rendered no output", e.ID)
			}
			path := goldenPath(e.ID)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `make golden-update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output drifted from %s\n-- got --\n%s\n-- want --\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenCorpusComplete fails when testdata/golden contains stale
// files for experiments that no longer exist, so the corpus and the
// registry cannot drift apart silently.
func TestGoldenCorpusComplete(t *testing.T) {
	known := make(map[string]bool)
	for _, e := range experiments.All() {
		known[e.ID+".txt"] = true
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden corpus missing (run `make golden-update`): %v", err)
	}
	for _, ent := range entries {
		if !known[ent.Name()] {
			t.Errorf("stale golden file %s: no experiment with that ID", ent.Name())
		}
	}
	if len(entries) != len(known) {
		t.Errorf("corpus has %d files, registry has %d experiments", len(entries), len(known))
	}
}
